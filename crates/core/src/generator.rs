//! The test generation procedures: the basic single-set generator with its
//! compaction heuristics (paper Sec. 2.2) and the multi-set enrichment
//! procedure (paper Sec. 3.2).
//!
//! Both share one engine. A test is built around a **primary target
//! fault** taken from `P_0`; **secondary target faults** are then folded
//! into the same test one at a time — a secondary candidate is accepted if
//! the justification procedure finds a test satisfying the union of the
//! necessary assignments of everything accepted so far. Under enrichment,
//! candidates are drawn from `P_0` first and only then from `P_1` (or the
//! further sets of a k-set split), so the number of tests stays determined
//! by `P_0` alone while `P_1` detections come for free.
//!
//! # Round-based parallel generation
//!
//! The fault loop is organized in **rounds**. Each round selects up to
//! [`AtpgConfig::batch`] eligible primaries from the committed state,
//! builds a candidate test for every one of them speculatively — each
//! build is a pure function of `(committed state, primary)` — and then
//! commits the results strictly in selection order. The builds are
//! sharded across a persistent [`pdf_pool`] worker pool whose
//! sequence-number reorder buffer delivers them back in that order, so
//! the committed outcome (test set, flags, counters, checkpoints) is
//! byte-identical for any [`AtpgConfig::threads`] value and any steal
//! schedule. A build whose primary was meanwhile detected by an earlier
//! commit of the same round is discarded whole (counted in
//! [`AtpgStats::builds_discarded`]); everything else lands exactly as a
//! single-threaded round would have landed it.

use std::cmp::Reverse;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use pdf_faults::{Assignments, FaultEntry, FaultList};
use pdf_logic::Value;
use pdf_netlist::{Circuit, LineId, SplitMix64};
use pdf_pool::{Control, PoolOptions};
use pdf_runctl::{Checkpoint, CheckpointPolicy, RunBudget, CHECKPOINT_VERSION};

use pdf_sim::SimOptions;

use crate::testset::ParseTestSetError;
use crate::{
    BranchGuide, Justified, Justifier, JustifyStats, TargetSplit, TestSet, DEFAULT_CONE_CACHE,
};

/// The compaction heuristic used to order primary and secondary targets
/// (paper Sec. 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Compaction {
    /// No secondary targets at all: one primary per test (the paper's
    /// `uncomp` baseline).
    Uncompacted,
    /// Primary and secondary targets in fault-list order. Our fault lists
    /// are sorted longest-first by construction, so to keep this order
    /// genuinely arbitrary it is a deterministic seeded shuffle (the
    /// paper's lists carry enumeration order, which is likewise
    /// uncorrelated by intent).
    Arbitrary,
    /// Longest path first, for both primary and secondary targets.
    LengthBased,
    /// Longest path first for the primary; secondaries minimize the number
    /// of new value components `n_Δ(p_i)` the test must additionally
    /// satisfy. The paper's choice, and the default.
    #[default]
    ValueBased,
}

impl Compaction {
    /// All heuristics, in the paper's table order.
    pub const ALL: [Compaction; 4] = [
        Compaction::Uncompacted,
        Compaction::Arbitrary,
        Compaction::LengthBased,
        Compaction::ValueBased,
    ];

    /// The short name used in the paper's tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Compaction::Uncompacted => "uncomp",
            Compaction::Arbitrary => "arbit",
            Compaction::LengthBased => "length",
            Compaction::ValueBased => "values",
        }
    }
}

/// How an accepted test is revised when a secondary target is added.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SecondaryMode {
    /// Regenerate the test from scratch for the grown requirement union —
    /// the paper's choice (Sec. 2.2): "new values can be specified under
    /// t ... if they are more suitable for detecting p_i".
    #[default]
    Regenerate,
    /// Freeze the input values committed so far and only specify further
    /// ones — the classical dynamic-compaction style of Goel & Rosales
    /// (the paper's reference [8]), kept as an ablation: the paper argues
    /// regeneration detects more secondary targets.
    FreezeValues,
}

impl SecondaryMode {
    /// A short label for reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SecondaryMode::Regenerate => "regenerate",
            SecondaryMode::FreezeValues => "freeze",
        }
    }
}

/// Configuration shared by the basic and enrichment generators.
#[derive(Clone, Debug)]
pub struct AtpgConfig {
    /// Seed for every random choice (justification decisions, the
    /// arbitrary order, leftover input filling). Equal seeds give
    /// bit-identical outcomes.
    pub seed: u64,
    /// The compaction heuristic.
    pub compaction: Compaction,
    /// Randomized 64-lane completion blocks per justification call (the
    /// paper uses one attempt; a few more blocks trade run time for fewer
    /// random misses).
    pub justify_attempts: u32,
    /// How secondary targets extend the test under construction.
    pub secondary_mode: SecondaryMode,
    /// The simulation options (backend, packed tile width, event-driven
    /// propagation) the justifier evaluates completion blocks with. All
    /// combinations produce identical tests and coverage for a fixed
    /// seed; a bare [`SimBackend`] converts via `.into()`.
    pub sim: SimOptions,
    /// Capacity of the justifier's cone-topology LRU cache (entries);
    /// `0` disables caching. Each worker keeps its own cache — there is
    /// no shared mutable simulation state between builds.
    pub cone_cache: usize,
    /// Cooperative time/cancellation budget. An exhausted budget makes the
    /// run stop targeting new faults, roll the round in flight back to the
    /// last committed boundary, and finalize the partial test set with
    /// [`AtpgOutcome::budget_exhausted`] set. Counted exhaustion polls
    /// happen at round-selection granularity on the commit thread only;
    /// builds observe the budget through non-consuming peek views, so the
    /// poll sequence — and with it the output — is identical for every
    /// thread count.
    pub budget: RunBudget,
    /// Crash-safe checkpointing: when set, run state is persisted
    /// atomically to the policy's file after every round that brings the
    /// completed-test count at least `every` past the last write (plus
    /// once when the run ends). Feed the file back through a
    /// `run_resumed` call to continue an interrupted run.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Per-fault panic quarantine. When on (the default), a panic raised
    /// while processing one fault — justification, the implication
    /// pre-filter, free-acceptance checks, or the per-test fault
    /// simulation sweep — is caught, attributed to the offending fault,
    /// and recorded in [`AtpgOutcome::quarantined`]; the run continues
    /// with the remaining faults. When off, such panics propagate.
    pub quarantine: bool,
    /// Statically learned implications consulted by the secondary-target
    /// conflict pre-filter. Learned conflicts are real conflicts, so
    /// attaching a table only rejects merge candidates whose justification
    /// was doomed anyway — coverage is never lost, the doomed candidates
    /// just skip the randomized justification attempt (which can shift
    /// later random draws, so equal seeds with and without a table need
    /// not produce identical sets). The checkpoint fingerprint records
    /// the table size when one is set.
    pub learned: Option<std::sync::Arc<pdf_faults::LearnedImplications>>,
    /// SCOAP testability guide. When set, every build's justifier runs
    /// its guided decision search deterministically (hardest line first,
    /// easier value — see [`BranchGuide`]), and the session orders primary
    /// targets hardest-first by summed assignment cost (a stable sort, so
    /// it composes with the compaction heuristics). Changes the random
    /// stream, so the checkpoint fingerprint records the guide's presence.
    pub guide: Option<std::sync::Arc<BranchGuide>>,
    /// Worker threads for the per-round speculative builds. `0` and `1`
    /// both run builds inline on the caller's thread. The value is
    /// deliberately **not** part of the checkpoint fingerprint: the test
    /// set, flags, counters and checkpoints are byte-identical for every
    /// thread count, so a run may be interrupted at one count and resumed
    /// at another.
    pub threads: usize,
    /// Primaries speculatively built per round. Outputs *do* depend on
    /// this value (a larger batch speculates further past each commit),
    /// so it is pinned in the checkpoint fingerprint. `0` is treated
    /// as `1`.
    pub batch: usize,
    /// Test instrumentation: forces the pool's pathological steal
    /// schedule (workers prefer stealing over their own deque). Results
    /// must not change; the differential tests flip this to prove it.
    pub force_steal: bool,
}

impl Default for AtpgConfig {
    fn default() -> AtpgConfig {
        AtpgConfig {
            seed: 2002,
            compaction: Compaction::ValueBased,
            justify_attempts: 1,
            secondary_mode: SecondaryMode::default(),
            sim: SimOptions::default(),
            cone_cache: DEFAULT_CONE_CACHE,
            budget: RunBudget::unlimited(),
            checkpoint: None,
            quarantine: true,
            learned: None,
            guide: None,
            threads: 1,
            batch: 8,
            force_steal: false,
        }
    }
}

/// The configuration facets a checkpoint pins: resuming under a different
/// compaction heuristic, secondary mode, attempt count, backend or round
/// batch size would silently diverge from the interrupted run, so resume
/// refuses them. Tile width, event mode and the thread count are
/// deliberately *not* pinned: witnesses are byte-identical across them,
/// so resuming a run on a machine with a different vector width or core
/// count is safe.
#[must_use]
pub fn config_fingerprint(config: &AtpgConfig) -> String {
    let mut fp = format!(
        "{}:{}:{}:{}:batch={}",
        config.compaction.label(),
        config.secondary_mode.label(),
        config.justify_attempts,
        config.sim.backend,
        config.batch.max(1)
    );
    if let Some(table) = &config.learned {
        // A learned table changes which secondaries reach justification
        // (and therefore the random stream); resuming without the same
        // table would diverge. Plain configs keep the historical shape.
        fp.push_str(&format!(":learned={}", table.len()));
    }
    if config.guide.is_some() {
        // The guide reorders primaries and replaces random guided-search
        // decisions; resuming without it would diverge.
        fp.push_str(":scoap");
    }
    fp
}

/// Counters describing a generation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtpgStats {
    /// Primary targets that failed justification (not retried).
    pub aborted_primaries: usize,
    /// Secondary candidates accepted via a justification run.
    pub secondary_accepts: usize,
    /// Secondary candidates accepted for free (already satisfied by the
    /// test built so far).
    pub free_accepts: usize,
    /// Secondary candidates rejected by a failed justification.
    pub secondary_rejects: usize,
    /// Secondary candidates rejected because their requirements conflict
    /// with the accumulated union (no justification attempted).
    pub conflict_rejects: usize,
    /// Faults quarantined after panicking mid-processing.
    pub faults_quarantined: usize,
    /// Checkpoint files written (including the final one).
    pub checkpoints_written: usize,
    /// Speculative round builds dropped whole because an earlier commit
    /// of the same round already detected (or quarantined) their primary.
    /// Their work never enters the other counters.
    pub builds_discarded: usize,
    /// Justifier counters.
    pub justify: JustifyStats,
}

impl AtpgStats {
    /// Merges the delta counters a committed build accumulated. The
    /// session-owned counters (`faults_quarantined`,
    /// `checkpoints_written`, `builds_discarded`) are never merged from
    /// builds — quarantine transitions are counted at commit and the
    /// other two only ever happen on the commit thread.
    fn absorb_build(&mut self, build: &AtpgStats) {
        self.aborted_primaries += build.aborted_primaries;
        self.secondary_accepts += build.secondary_accepts;
        self.free_accepts += build.free_accepts;
        self.secondary_rejects += build.secondary_rejects;
        self.conflict_rejects += build.conflict_rejects;
        self.justify.absorb(&build.justify);
    }
}

/// A checkpoint refused by a `run_resumed` call: the file does not match
/// the run it is being fed into, or its carried tests do not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// A pinned facet of the checkpoint disagrees with the current run.
    Mismatch {
        /// Which facet ("circuit", "seed", "fingerprint", ...).
        field: &'static str,
        /// The checkpoint's value.
        expected: String,
        /// The current run's value.
        found: String,
    },
    /// The carried test lines do not parse back into a test set.
    BadTests(ParseTestSetError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this run: {field} is `{expected}` in the checkpoint \
                 but `{found}` here"
            ),
            ResumeError::BadTests(e) => write!(f, "checkpoint carries malformed tests: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::BadTests(e) => Some(e),
            ResumeError::Mismatch { .. } => None,
        }
    }
}

/// The result of a generation run over one or more target sets.
#[derive(Clone, Debug)]
pub struct AtpgOutcome {
    test_set: TestSet,
    detected: Vec<bool>,
    aborted: Vec<bool>,
    quarantined: Vec<bool>,
    set_sizes: Vec<usize>,
    stats: AtpgStats,
    budget_exhausted: bool,
}

impl AtpgOutcome {
    /// The generated tests.
    #[must_use]
    pub fn tests(&self) -> &TestSet {
        &self.test_set
    }

    /// Per-fault detection flags over the concatenation of the target
    /// sets (set 0 first).
    #[must_use]
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Per-fault abort flags (only primaries can abort).
    #[must_use]
    pub fn aborted(&self) -> &[bool] {
        &self.aborted
    }

    /// Per-fault quarantine flags: faults skipped after panicking
    /// mid-processing (the reported skip-list).
    #[must_use]
    pub fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    /// Whether the run stopped because its time budget or cancellation
    /// token fired. The test set is then a valid partial result: every
    /// test in it is complete and its detections are real, but undetected
    /// faults were simply never reached.
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// The sizes of the target sets, in order.
    #[must_use]
    pub fn set_sizes(&self) -> &[usize] {
        &self.set_sizes
    }

    /// Number of faults detected within target set `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn detected_in_set(&self, set: usize) -> usize {
        let (lo, hi) = self.set_range(set);
        self.detected[lo..hi].iter().filter(|&&d| d).count()
    }

    /// Total detected faults across all sets.
    #[must_use]
    pub fn detected_total(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Run counters.
    #[must_use]
    pub fn stats(&self) -> &AtpgStats {
        &self.stats
    }

    fn set_range(&self, set: usize) -> (usize, usize) {
        let lo: usize = self.set_sizes[..set].iter().sum();
        (lo, lo + self.set_sizes[set])
    }
}

/// The basic test generation procedure over a single target set
/// (paper Sec. 2).
///
/// # Example
///
/// ```
/// use pdf_atpg::{AtpgConfig, BasicAtpg, Compaction};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
///
/// let outcome = BasicAtpg::new(&circuit)
///     .with_config(AtpgConfig { compaction: Compaction::ValueBased, ..Default::default() })
///     .run(&faults);
/// assert!(outcome.detected_in_set(0) > 0);
/// assert!(outcome.tests().len() <= faults.len());
/// ```
#[derive(Clone, Debug)]
pub struct BasicAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> BasicAtpg<'c> {
    /// Creates a generator with the default configuration.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> BasicAtpg<'c> {
        BasicAtpg {
            circuit,
            config: AtpgConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AtpgConfig) -> BasicAtpg<'c> {
        self.config = config;
        self
    }

    /// Convenience: replaces just the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> BasicAtpg<'c> {
        self.config.seed = seed;
        self
    }

    /// Runs test generation for `targets`.
    #[must_use]
    pub fn run(&self, targets: &FaultList) -> AtpgOutcome {
        Session::new(self.circuit, self.config.clone(), &[targets])
            .run(None)
            .expect("a fresh run cannot fail on resume validation")
    }

    /// Runs test generation for `targets`, continuing from `checkpoint` —
    /// the crash-recovery entry point. For a fixed seed the resumed run
    /// produces the identical test set an uninterrupted run would have.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] when the checkpoint does not belong to this
    /// circuit/configuration/target-set combination.
    pub fn run_resumed(
        &self,
        targets: &FaultList,
        checkpoint: &Checkpoint,
    ) -> Result<AtpgOutcome, ResumeError> {
        Session::new(self.circuit, self.config.clone(), &[targets]).run(Some(checkpoint))
    }
}

/// The proposed test enrichment procedure over a multi-set target split
/// (paper Sec. 3): primaries come from `P_0` only, secondaries from `P_0`
/// first and then from the following sets, so the test count stays
/// determined by `P_0`.
///
/// The compaction heuristic of the underlying generation is the value-based
/// one by default, as selected in the paper.
///
/// # Example
///
/// ```
/// use pdf_atpg::{EnrichmentAtpg, TargetSplit};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
/// let split = TargetSplit::by_cumulative_length(&faults, 10);
///
/// let outcome = EnrichmentAtpg::new(&circuit).with_seed(2002).run(&split);
/// // P1 detections come on top of P0's, with tests driven by P0 alone.
/// assert!(outcome.detected_total() >= outcome.detected_in_set(0));
/// ```
#[derive(Clone, Debug)]
pub struct EnrichmentAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> EnrichmentAtpg<'c> {
    /// Creates an enrichment generator with the default configuration.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> EnrichmentAtpg<'c> {
        EnrichmentAtpg {
            circuit,
            config: AtpgConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AtpgConfig) -> EnrichmentAtpg<'c> {
        self.config = config;
        self
    }

    /// Convenience: replaces just the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> EnrichmentAtpg<'c> {
        self.config.seed = seed;
        self
    }

    /// Runs enrichment over the split's sets.
    #[must_use]
    pub fn run(&self, split: &TargetSplit) -> AtpgOutcome {
        let _phase = pdf_telemetry::Span::enter("enrich");
        let sets: Vec<&FaultList> = split.sets().iter().collect();
        Session::new(self.circuit, self.config.clone(), &sets)
            .run(None)
            .expect("a fresh run cannot fail on resume validation")
    }

    /// Runs enrichment over the split's sets, continuing from
    /// `checkpoint` — the crash-recovery entry point. For a fixed seed the
    /// resumed run produces the identical test set an uninterrupted run
    /// would have.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] when the checkpoint does not belong to this
    /// circuit/configuration/target-split combination.
    pub fn run_resumed(
        &self,
        split: &TargetSplit,
        checkpoint: &Checkpoint,
    ) -> Result<AtpgOutcome, ResumeError> {
        let _phase = pdf_telemetry::Span::enter("enrich");
        let sets: Vec<&FaultList> = split.sets().iter().collect();
        Session::new(self.circuit, self.config.clone(), &sets).run(Some(checkpoint))
    }
}

/// The read-only run context every worker shares: circuit, configuration
/// and the fault population. Nothing in here changes after construction,
/// which is what lets builds run concurrently without locks.
struct SessionCtx<'c, 'f> {
    circuit: &'c Circuit,
    config: AtpgConfig,
    /// All faults, set 0 first.
    faults: Vec<&'f FaultEntry>,
    /// First index of each set in `faults` (plus a final sentinel).
    set_starts: Vec<usize>,
    /// Primary (and arbit/length secondary) order over set-0 indices.
    primary_order: Vec<usize>,
}

impl SessionCtx<'_, '_> {
    fn set_sizes(&self) -> Vec<usize> {
        self.set_starts.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// The committed run state. Mutated only on the commit thread, only
/// between rounds or while applying one build result; round boundaries
/// are the sole checkpointable (and rollback) points.
struct SessionState {
    detected: Vec<bool>,
    aborted: Vec<bool>,
    quarantined: Vec<bool>,
    stats: AtpgStats,
    /// Tests pushed so far (checkpoint interval anchor).
    completed: usize,
    /// `completed` as of the last checkpoint write.
    last_checkpoint_at: usize,
    /// A checkpoint write already failed and was reported (warn once).
    checkpoint_warned: bool,
    /// Generation of the last checkpoint written (or resumed from); the
    /// next save stamps `generation + 1`. Save counts are deterministic
    /// per configuration, so checkpoint bytes stay schedule-independent.
    checkpoint_generation: u64,
}

/// Internal engine shared by both public procedures.
struct Session<'c, 'f> {
    ctx: SessionCtx<'c, 'f>,
    state: SessionState,
}

/// The committed flags a round's builds all read. Frozen at round start;
/// rolling a cut round back restores exactly this.
struct RoundSnapshot {
    detected: Vec<bool>,
    aborted: Vec<bool>,
    quarantined: Vec<bool>,
}

/// One unit of pool work: build a candidate test around `primary`
/// against the round's committed snapshot.
struct BuildJob {
    primary: usize,
    snapshot: Arc<RoundSnapshot>,
}

/// What one speculative build produced.
enum BuildOutcome {
    /// A finished candidate test (to be swept and pushed at commit).
    Test(Justified),
    /// The primary failed justification: abort it.
    Aborted,
    /// The primary panicked mid-justification and quarantined itself;
    /// the detail is in the build's quarantine log.
    PrimaryQuarantined,
    /// The build observed an exhausted budget (through its peek view)
    /// and stopped early. The whole round is rolled back: a truncated
    /// build says nothing reproducible about its primary.
    Cut,
}

/// A build's result as delivered through the reorder buffer.
struct BuildResult {
    primary: usize,
    outcome: BuildOutcome,
    /// Delta counters this build accumulated (merged only if committed).
    stats: AtpgStats,
    /// Faults this build saw panic, with the context string the commit
    /// thread reports on the first (committing) observation.
    quarantined: Vec<(usize, String)>,
}

/// Decorrelated per-primary justifier seed: every build draws from its
/// own stream, so a build's randomness depends only on the run seed and
/// its primary — never on which builds ran before it or where.
fn build_seed(seed: u64, primary: usize) -> u64 {
    seed ^ (primary as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One speculative build: the per-fault pipeline (primary justification,
/// secondary folding) evaluated against a frozen snapshot. Local flag
/// copies keep the bookkeeping identical to the historical inline code;
/// nothing here touches shared mutable state.
struct Build<'a, 'c, 'f> {
    ctx: &'a SessionCtx<'c, 'f>,
    /// Abort flags from the snapshot (builds never abort other faults).
    aborted: &'a [bool],
    detected: Vec<bool>,
    quarantined: Vec<bool>,
    justifier: Justifier<'c>,
    /// Non-consuming peek view of the run budget.
    budget: RunBudget,
    stats: AtpgStats,
    /// Locally observed fault panics, in observation order.
    quarantine_log: Vec<(usize, String)>,
    /// The peeked budget fired mid-build: the result must become `Cut`.
    cut: bool,
}

/// Executes one build job. Pure in the functional sense: the result
/// depends only on `(ctx, job.primary, job.snapshot)`.
fn run_build<'c>(ctx: &SessionCtx<'c, '_>, job: BuildJob) -> BuildResult {
    let BuildJob { primary, snapshot } = job;
    let budget = ctx.config.budget.peek_view();
    // A fresh justifier per build: its RNG stream is a function of the
    // primary alone, and its cone cache is private to this worker call.
    let mut justifier = Justifier::new(ctx.circuit, build_seed(ctx.config.seed, primary))
        .with_attempts(ctx.config.justify_attempts)
        .with_options(ctx.config.sim)
        .with_cone_cache(ctx.config.cone_cache)
        .with_budget(budget.clone());
    if let Some(guide) = &ctx.config.guide {
        justifier = justifier.with_guide(guide.clone());
    }
    let mut build = Build {
        ctx,
        aborted: &snapshot.aborted,
        detected: snapshot.detected.clone(),
        quarantined: snapshot.quarantined.clone(),
        justifier,
        budget,
        stats: AtpgStats::default(),
        quarantine_log: Vec::new(),
        cut: false,
    };
    let outcome = build.run(primary);
    let mut stats = build.stats;
    stats.justify = build.justifier.stats();
    BuildResult {
        primary,
        outcome,
        stats,
        quarantined: build.quarantine_log,
    }
}

impl<'c> Build<'_, 'c, '_> {
    fn run(&mut self, primary: usize) -> BuildOutcome {
        let req = self.ctx.faults[primary].assignments.clone();
        let Some(justified) = self.justify_guarded(primary, &req, None) else {
            if self.quarantined[primary] {
                return BuildOutcome::PrimaryQuarantined;
            }
            if self.budget.exhausted() {
                // A budget-truncated search says nothing about the
                // fault: the round is rolled back and the fault stays
                // unaborted for the resumed run.
                return BuildOutcome::Cut;
            }
            self.stats.aborted_primaries += 1;
            return BuildOutcome::Aborted;
        };
        let mut union = req;
        // Under the freeze-values mode, input values committed so far
        // are pinned for every later secondary (Goel-Rosales style).
        let mut frozen: Vec<(LineId, Value, Value)> =
            if matches!(self.ctx.config.secondary_mode, SecondaryMode::FreezeValues) {
                justified.assignment.clone()
            } else {
                Vec::new()
            };
        let mut current = justified;

        if !matches!(self.ctx.config.compaction, Compaction::Uncompacted) {
            self.extend_with_secondaries(primary, &mut union, &mut current, &mut frozen);
        }
        if self.cut || self.budget.exhausted() {
            return BuildOutcome::Cut;
        }
        BuildOutcome::Test(current)
    }

    /// Marks fault `i` quarantined for the rest of this build and logs it
    /// for the commit thread, which owns the transition (counter, warning
    /// line) on first observation.
    fn quarantine_fault(&mut self, i: usize, context: &str) {
        if self.quarantined[i] {
            return;
        }
        self.quarantined[i] = true;
        self.quarantine_log.push((i, context.to_owned()));
    }

    /// A justification call attributable to fault `i`: under quarantine,
    /// a panic inside the justifier quarantines the fault and reads as a
    /// failed call.
    fn justify_guarded(
        &mut self,
        i: usize,
        req: &Assignments,
        frozen: Option<&[(LineId, Value, Value)]>,
    ) -> Option<Justified> {
        let run = |justifier: &mut Justifier<'c>| match frozen {
            None => justifier.justify(req),
            Some(pins) => justifier.justify_seeded(req, pins),
        };
        if !self.ctx.config.quarantine {
            return run(&mut self.justifier);
        }
        let justifier = &mut self.justifier;
        match catch_unwind(AssertUnwindSafe(|| {
            // The `pool.build` failpoint, keyed by fault index: firing
            // depends only on the key, never on the worker schedule, so
            // an injected panic quarantines the same fault at every
            // thread count. Feeds the regular quarantine path below.
            if pdf_chaos::evaluate_keyed(pdf_chaos::sites::POOL_BUILD, i as u64).is_some() {
                pdf_telemetry::count(pdf_telemetry::counters::FAILPOINTS_HIT, 1);
                panic!("injected failpoint {}@{i}", pdf_chaos::sites::POOL_BUILD);
            }
            run(justifier)
        })) {
            Ok(result) => result,
            Err(payload) => {
                let message = pdf_sim::panic_message(payload.as_ref()).to_owned();
                self.quarantine_fault(i, &format!("justification ({message})"));
                None
            }
        }
    }

    /// Folds secondary targets into the current test, set by set.
    fn extend_with_secondaries(
        &mut self,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let set_count = self.ctx.set_starts.len() - 1;
        for set in 0..set_count {
            // Per the paper, faults of a later set are considered only
            // after all faults of the earlier sets.
            match self.ctx.config.compaction {
                Compaction::Uncompacted => unreachable!("checked by caller"),
                Compaction::Arbitrary | Compaction::LengthBased => {
                    self.ordered_pass(set, primary, union, current, frozen);
                }
                Compaction::ValueBased => {
                    self.value_based_pass(set, primary, union, current, frozen);
                }
            }
        }
    }

    /// Secondary candidates in a fixed order (fault-list order for the
    /// length-based heuristic, the shuffled order for the arbitrary one).
    fn ordered_pass(
        &mut self,
        set: usize,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let (lo, hi) = (self.ctx.set_starts[set], self.ctx.set_starts[set + 1]);
        let order: Vec<usize> = if set == 0 {
            self.ctx.primary_order.clone()
        } else {
            (lo..hi).collect()
        };
        for i in order {
            if self.budget.exhausted() {
                self.cut = true; // the whole round is rolled back
                return;
            }
            if self.eligible_secondary(i, primary) {
                self.try_candidate(i, union, current, frozen);
            }
        }
    }

    /// The value-based heuristic: repeatedly take the compatible candidate
    /// with the fewest new value components `n_Δ`; Δ-sets stay valid
    /// between accepts because the union only changes on accept.
    fn value_based_pass(
        &mut self,
        set: usize,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let (lo, hi) = (self.ctx.set_starts[set], self.ctx.set_starts[set + 1]);
        let mut considered = vec![false; hi - lo];
        loop {
            if self.budget.exhausted() {
                self.cut = true; // the whole round is rolled back
                return;
            }
            // Rank all unconsidered candidates by n_Δ against the current
            // union; conflicting candidates are rejected outright.
            let mut ranked: Vec<(usize, usize)> = Vec::new();
            for i in lo..hi {
                if considered[i - lo] || !self.eligible_secondary(i, primary) {
                    continue;
                }
                match union.delta_count(&self.ctx.faults[i].assignments) {
                    Some(delta) => ranked.push((delta, i)),
                    None => {
                        considered[i - lo] = true;
                        self.stats.conflict_rejects += 1;
                    }
                }
            }
            ranked.sort_unstable();
            let mut accepted = false;
            for (_, i) in ranked {
                considered[i - lo] = true;
                if self.try_candidate(i, union, current, frozen) {
                    accepted = true;
                    break; // union changed: recompute the Δ ranking
                }
            }
            if !accepted {
                break;
            }
        }
    }

    fn eligible_secondary(&self, i: usize, primary: usize) -> bool {
        i != primary && !self.detected[i] && !self.aborted[i] && !self.quarantined[i]
    }

    /// Attempts to add fault `i` to the current test. Returns `true` when
    /// the union of requirements changed (the test was regenerated).
    fn try_candidate(
        &mut self,
        i: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) -> bool {
        let entry = self.ctx.faults[i];
        let a = &entry.assignments;
        // Free acceptance: the test built so far already detects it. Its
        // requirements still join the union so that later regenerations
        // keep detecting it; if that grows the union, the caller must
        // recompute its Δ ranking (the paper recomputes Δ per selection).
        let satisfied = if self.ctx.config.quarantine {
            let waves = &current.waves;
            match catch_unwind(AssertUnwindSafe(|| a.satisfied_by(waves))) {
                Ok(satisfied) => satisfied,
                Err(payload) => {
                    let message = pdf_sim::panic_message(payload.as_ref()).to_owned();
                    self.quarantine_fault(i, &format!("the free-acceptance check ({message})"));
                    return false;
                }
            }
        } else {
            a.satisfied_by(&current.waves)
        };
        if satisfied {
            let mut grew = false;
            if let Some(merged) = union.merged(a) {
                grew = merged != *union;
                *union = merged;
            }
            self.detected[i] = true;
            self.stats.free_accepts += 1;
            pdf_telemetry::count(pdf_telemetry::counters::SECONDARY_DETECTED, 1);
            return grew;
        }
        let Some(merged) = union.merged(a) else {
            self.stats.conflict_rejects += 1;
            return false;
        };
        // Implication pre-filter: a contradiction proves no test exists
        // for the merged requirements, so the (much costlier) randomized
        // justification is skipped. Sound — it only rejects candidates
        // justification could never accept.
        let conflicting = if self.ctx.config.quarantine {
            let circuit = self.ctx.circuit;
            let merged_ref = &merged;
            let learned = self.ctx.config.learned.as_deref();
            match catch_unwind(AssertUnwindSafe(|| {
                pdf_faults::Implicator::from_assignments_with(circuit, merged_ref, learned).is_err()
            })) {
                Ok(conflicting) => conflicting,
                Err(payload) => {
                    let message = pdf_sim::panic_message(payload.as_ref()).to_owned();
                    self.quarantine_fault(i, &format!("the implication pre-filter ({message})"));
                    return false;
                }
            }
        } else {
            pdf_faults::Implicator::from_assignments_with(
                self.ctx.circuit,
                &merged,
                self.ctx.config.learned.as_deref(),
            )
            .is_err()
        };
        if conflicting {
            self.stats.conflict_rejects += 1;
            return false;
        }
        let result = match self.ctx.config.secondary_mode {
            SecondaryMode::Regenerate => self.justify_guarded(i, &merged, None),
            SecondaryMode::FreezeValues => self.justify_guarded(i, &merged, Some(frozen)),
        };
        match result {
            Some(justified) => {
                if matches!(self.ctx.config.secondary_mode, SecondaryMode::FreezeValues) {
                    // Pin the newly committed input values for the rest of
                    // this test's construction.
                    for &(line, v1, v2) in &justified.assignment {
                        if !frozen.iter().any(|&(l, _, _)| l == line) {
                            frozen.push((line, v1, v2));
                        }
                    }
                }
                *union = merged;
                *current = justified;
                self.detected[i] = true;
                self.stats.secondary_accepts += 1;
                pdf_telemetry::count(pdf_telemetry::counters::SECONDARY_DETECTED, 1);
                true
            }
            None => {
                // A quarantine mid-call is not a justification verdict.
                if !self.quarantined[i] {
                    self.stats.secondary_rejects += 1;
                }
                false
            }
        }
    }
}

impl<'c, 'f> Session<'c, 'f> {
    fn new(circuit: &'c Circuit, config: AtpgConfig, sets: &[&'f FaultList]) -> Session<'c, 'f> {
        let mut faults = Vec::new();
        let mut set_starts = vec![0usize];
        for set in sets {
            faults.extend(set.iter());
            set_starts.push(faults.len());
        }
        // Decorrelate the shuffle stream from the justifier's streams.
        let mut rng = SplitMix64::new(config.seed ^ 0x0A1B_2C3D_4E5F_6071);
        let mut primary_order: Vec<usize> = (0..set_starts[1]).collect();
        if matches!(config.compaction, Compaction::Arbitrary) {
            // Fisher-Yates with the deterministic generator.
            for i in (1..primary_order.len()).rev() {
                let j = rng.next_below(i + 1);
                primary_order.swap(i, j);
            }
        }
        if let Some(guide) = &config.guide {
            // SCOAP selection: hardest primaries first (largest summed
            // assignment cost). The sort is stable, so within equal
            // difficulty the compaction heuristic's order survives — the
            // shuffle above still draws the same RNG either way.
            primary_order
                .sort_by_cached_key(|&i| Reverse(guide.assignment_cost(&faults[i].assignments)));
        }
        let n = faults.len();
        Session {
            ctx: SessionCtx {
                circuit,
                config,
                faults,
                set_starts,
                primary_order,
            },
            state: SessionState {
                detected: vec![false; n],
                aborted: vec![false; n],
                quarantined: vec![false; n],
                stats: AtpgStats::default(),
                completed: 0,
                last_checkpoint_at: 0,
                checkpoint_warned: false,
                checkpoint_generation: 0,
            },
        }
    }

    fn run(self, resume: Option<&Checkpoint>) -> Result<AtpgOutcome, ResumeError> {
        let _phase = pdf_telemetry::Span::enter("generate");
        let Session { ctx, mut state } = self;
        let mut test_set = match resume {
            Some(checkpoint) => apply_resume(&ctx, &mut state, checkpoint)?,
            None => TestSet::new(),
        };
        state.last_checkpoint_at = state.completed;

        let batch = ctx.config.batch.max(1);
        let options = PoolOptions::new(ctx.config.threads).with_force_steal(ctx.config.force_steal);
        let ctx_ref = &ctx;
        let state_ref = &mut state;
        let tests_ref = &mut test_set;
        let stopped_early = pdf_pool::with_pool(
            &options,
            |job: BuildJob| run_build(ctx_ref, job),
            move |pool| {
                let mut stopped = false;
                'rounds: loop {
                    // Round selection: up to `batch` eligible primaries
                    // from the committed state, one counted budget poll
                    // per selection attempt. This is the only place the
                    // run consumes budget polls, so the poll sequence is
                    // independent of the thread count.
                    let mut primaries: Vec<usize> = Vec::new();
                    while primaries.len() < batch {
                        if ctx_ref.config.budget.exhausted() {
                            stopped = true;
                            break 'rounds;
                        }
                        let Some(p) = next_primary(ctx_ref, state_ref, &primaries) else {
                            break;
                        };
                        pdf_telemetry::count(pdf_telemetry::counters::FAULTS_TARGETED, 1);
                        primaries.push(p);
                    }
                    if primaries.is_empty() {
                        break; // natural end: nothing left to target
                    }
                    pdf_telemetry::count(pdf_telemetry::counters::POOL_ROUNDS, 1);
                    let snapshot = Arc::new(RoundSnapshot {
                        detected: state_ref.detected.clone(),
                        aborted: state_ref.aborted.clone(),
                        quarantined: state_ref.quarantined.clone(),
                    });
                    let round_stats = state_ref.stats;
                    let round_completed = state_ref.completed;
                    let round_tests = tests_ref.len();
                    let jobs: Vec<BuildJob> = primaries
                        .iter()
                        .map(|&primary| BuildJob {
                            primary,
                            snapshot: Arc::clone(&snapshot),
                        })
                        .collect();
                    let mut round_cut = false;
                    pool.run_round(jobs, |_, result| {
                        if matches!(result.outcome, BuildOutcome::Cut) {
                            round_cut = true;
                            return Control::Stop;
                        }
                        commit_result(ctx_ref, state_ref, tests_ref, result);
                        Control::Continue
                    });
                    if round_cut {
                        // A build hit the budget: the round's commits are
                        // unwound to the boundary the snapshot describes,
                        // so the finalized prefix is exactly what an
                        // uninterrupted run would have committed by then.
                        state_ref.detected.clone_from(&snapshot.detected);
                        state_ref.aborted.clone_from(&snapshot.aborted);
                        state_ref.quarantined.clone_from(&snapshot.quarantined);
                        state_ref.stats = round_stats;
                        state_ref.completed = round_completed;
                        tests_ref.truncate(round_tests);
                        stopped = true;
                        break;
                    }
                    if let Some(policy) = &ctx_ref.config.checkpoint {
                        if state_ref.completed - state_ref.last_checkpoint_at >= policy.every {
                            write_checkpoint(ctx_ref, state_ref, tests_ref, false);
                            state_ref.last_checkpoint_at = state_ref.completed;
                        }
                    }
                }
                stopped
            },
        );

        if stopped_early && !ctx.config.budget.already_exhausted() {
            // The cut was observed through a non-latching peek view (a
            // deadline expiring mid-round); consume one counted poll so
            // the outcome and final checkpoint record the exhaustion.
            let _ = ctx.config.budget.exhausted();
        }
        let budget_exhausted = ctx.config.budget.already_exhausted();
        if ctx.config.checkpoint.is_some() {
            write_checkpoint(&ctx, &mut state, &test_set, !budget_exhausted);
        }
        let set_sizes = ctx.set_sizes();
        Ok(AtpgOutcome {
            test_set,
            detected: state.detected,
            aborted: state.aborted,
            quarantined: state.quarantined,
            set_sizes,
            stats: state.stats,
            budget_exhausted,
        })
    }
}

/// The next set-0 fault to build a test around: undetected, not yet
/// tried as a primary, not quarantined, not already in this round's
/// batch; longest-first except under the arbitrary order.
fn next_primary(
    ctx: &SessionCtx<'_, '_>,
    state: &SessionState,
    pending: &[usize],
) -> Option<usize> {
    ctx.primary_order.iter().copied().find(|&i| {
        !state.detected[i] && !state.aborted[i] && !state.quarantined[i] && !pending.contains(&i)
    })
}

/// Applies one build result to the committed state, in sequence order.
fn commit_result(
    ctx: &SessionCtx<'_, '_>,
    state: &mut SessionState,
    test_set: &mut TestSet,
    result: BuildResult,
) {
    let BuildResult {
        primary,
        outcome,
        stats,
        quarantined,
    } = result;
    // Read the duplicate verdict before this build's quarantine log
    // lands: a build that quarantined its own primary is the primary's
    // own committed attempt, not a duplicate.
    let duplicate = state.detected[primary] || state.quarantined[primary];
    for (i, context) in &quarantined {
        commit_quarantine(ctx, state, *i, context);
    }
    if duplicate {
        // An earlier commit of this round already detected (or
        // quarantined) the primary. The speculative build is dropped
        // whole — merging its counters would break the
        // `tests + aborted primaries = justification calls` ledger the
        // committed outcome maintains.
        state.stats.builds_discarded += 1;
        pdf_telemetry::count(pdf_telemetry::counters::POOL_BUILDS_DISCARDED, 1);
        return;
    }
    state.stats.absorb_build(&stats);
    match outcome {
        BuildOutcome::Cut => unreachable!("cut results stop the round before commit"),
        BuildOutcome::Aborted => state.aborted[primary] = true,
        BuildOutcome::PrimaryQuarantined => {}
        BuildOutcome::Test(current) => {
            // Drop every fault the finished test detects (the paper's
            // per-test fault simulation), fanned out over fault chunks.
            commit_sweep(ctx, state, &current.waves);
            debug_assert!(state.detected[primary], "primary must be detected");
            test_set.push(current.test);
            state.completed += 1;
        }
    }
}

/// Marks fault `i` quarantined in the committed state: it panicked
/// mid-processing and is skipped (never targeted, never offered as a
/// secondary, never swept) for the rest of the run. Only the first
/// observation counts and warns — later builds of the same round may
/// rediscover the same panic.
fn commit_quarantine(ctx: &SessionCtx<'_, '_>, state: &mut SessionState, i: usize, context: &str) {
    if state.quarantined[i] {
        return;
    }
    state.quarantined[i] = true;
    state.stats.faults_quarantined += 1;
    pdf_telemetry::count(pdf_telemetry::counters::FAULTS_QUARANTINED, 1);
    eprintln!(
        "warning: quarantined fault {} after a panic during {context}",
        ctx.faults[i].fault
    );
}

/// The per-test fault simulation sweep at commit, fault panics
/// quarantined.
fn commit_sweep(ctx: &SessionCtx<'_, '_>, state: &mut SessionState, waves: &[pdf_logic::Triple]) {
    if !ctx.config.quarantine {
        for i in pdf_sim::newly_satisfied(waves, &ctx.faults, &state.detected) {
            state.detected[i] = true;
        }
        return;
    }
    let skip: Vec<bool> = state
        .detected
        .iter()
        .zip(&state.quarantined)
        .map(|(&d, &q)| d || q)
        .collect();
    let swept = pdf_sim::newly_satisfied_guarded(waves, &ctx.faults, &skip);
    for i in swept.satisfied {
        state.detected[i] = true;
    }
    for i in swept.panicked {
        commit_quarantine(ctx, state, i, "fault simulation");
    }
}

/// Validates `checkpoint` against this run and installs its state: flags,
/// counters and the completed-test count. Returns the carried test set.
/// Since version 2 no RNG position is carried: every build's stream is
/// re-derived from `(seed, primary)`, so the committed flags alone
/// determine the continuation.
fn apply_resume(
    ctx: &SessionCtx<'_, '_>,
    state: &mut SessionState,
    checkpoint: &Checkpoint,
) -> Result<TestSet, ResumeError> {
    let mismatch = |field: &'static str, expected: String, found: String| {
        Err(ResumeError::Mismatch {
            field,
            expected,
            found,
        })
    };
    if checkpoint.version != CHECKPOINT_VERSION {
        return mismatch(
            "version",
            checkpoint.version.to_string(),
            CHECKPOINT_VERSION.to_string(),
        );
    }
    if checkpoint.circuit != ctx.circuit.name() {
        return mismatch(
            "circuit",
            checkpoint.circuit.clone(),
            ctx.circuit.name().to_owned(),
        );
    }
    if checkpoint.seed != ctx.config.seed {
        return mismatch(
            "seed",
            format!("{:#018x}", checkpoint.seed),
            format!("{:#018x}", ctx.config.seed),
        );
    }
    let fingerprint = config_fingerprint(&ctx.config);
    if checkpoint.fingerprint != fingerprint {
        return mismatch("fingerprint", checkpoint.fingerprint.clone(), fingerprint);
    }
    let set_sizes = ctx.set_sizes();
    if checkpoint.set_sizes != set_sizes {
        return mismatch(
            "set_sizes",
            format!("{:?}", checkpoint.set_sizes),
            format!("{set_sizes:?}"),
        );
    }
    let n = ctx.faults.len();
    for (field, flags) in [
        ("detected", &checkpoint.detected),
        ("aborted", &checkpoint.aborted),
        ("quarantined", &checkpoint.quarantined),
    ] {
        if flags.len() != n {
            return mismatch(
                field,
                format!("{} flags", flags.len()),
                format!("{n} faults"),
            );
        }
    }
    let test_set =
        TestSet::from_text(&checkpoint.tests.join("\n")).map_err(ResumeError::BadTests)?;
    let width = ctx.circuit.inputs().len();
    if let Some(t) = test_set.tests().iter().find(|t| t.len() != width) {
        return mismatch(
            "test width",
            t.len().to_string(),
            format!("{width} circuit inputs"),
        );
    }
    if test_set.len() != checkpoint.completed {
        return mismatch(
            "completed",
            checkpoint.completed.to_string(),
            format!("{} carried tests", test_set.len()),
        );
    }
    state.detected.copy_from_slice(&checkpoint.detected);
    state.aborted.copy_from_slice(&checkpoint.aborted);
    state.quarantined.copy_from_slice(&checkpoint.quarantined);
    state.completed = checkpoint.completed;
    state.checkpoint_generation = checkpoint.generation;
    state.stats.aborted_primaries = checkpoint.counter("aborted_primaries") as usize;
    state.stats.secondary_accepts = checkpoint.counter("secondary_accepts") as usize;
    state.stats.free_accepts = checkpoint.counter("free_accepts") as usize;
    state.stats.secondary_rejects = checkpoint.counter("secondary_rejects") as usize;
    state.stats.conflict_rejects = checkpoint.counter("conflict_rejects") as usize;
    state.stats.faults_quarantined = checkpoint.counter("faults_quarantined") as usize;
    state.stats.checkpoints_written = checkpoint.counter("checkpoints_written") as usize;
    state.stats.builds_discarded = checkpoint.counter("builds_discarded") as usize;
    Ok(test_set)
}

/// Writes a round-boundary checkpoint through the configured policy. A
/// refused write is reported once and the run continues — losing
/// crash-recoverability must not fail the run itself.
fn write_checkpoint(
    ctx: &SessionCtx<'_, '_>,
    state: &mut SessionState,
    test_set: &TestSet,
    complete: bool,
) {
    let Some(policy) = &ctx.config.checkpoint else {
        return;
    };
    let checkpoint = Checkpoint {
        version: CHECKPOINT_VERSION,
        generation: state.checkpoint_generation + 1,
        circuit: ctx.circuit.name().to_owned(),
        seed: ctx.config.seed,
        fingerprint: config_fingerprint(&ctx.config),
        set_sizes: ctx.set_sizes(),
        completed: state.completed,
        // Vestigial since version 2: resume re-derives every build's
        // stream from (seed, primary) instead of a carried RNG position.
        rng_state: 0,
        detected: state.detected.clone(),
        aborted: state.aborted.clone(),
        quarantined: state.quarantined.clone(),
        tests: test_set
            .tests()
            .iter()
            .map(crate::testset::test_line)
            .collect(),
        counters: vec![
            (
                "aborted_primaries".to_owned(),
                state.stats.aborted_primaries as u64,
            ),
            (
                "secondary_accepts".to_owned(),
                state.stats.secondary_accepts as u64,
            ),
            ("free_accepts".to_owned(), state.stats.free_accepts as u64),
            (
                "secondary_rejects".to_owned(),
                state.stats.secondary_rejects as u64,
            ),
            (
                "conflict_rejects".to_owned(),
                state.stats.conflict_rejects as u64,
            ),
            (
                "faults_quarantined".to_owned(),
                state.stats.faults_quarantined as u64,
            ),
            (
                "checkpoints_written".to_owned(),
                (state.stats.checkpoints_written + 1) as u64,
            ),
            (
                "builds_discarded".to_owned(),
                state.stats.builds_discarded as u64,
            ),
        ],
        complete,
    };
    match checkpoint.save(&policy.path) {
        Ok(()) => {
            state.stats.checkpoints_written += 1;
            state.checkpoint_generation += 1;
        }
        Err(e) => {
            if !state.checkpoint_warned {
                eprintln!("warning: checkpoint write failed, continuing without: {e}");
                state.checkpoint_warned = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;
    use pdf_paths::PathEnumerator;
    use pdf_sim::SimBackend;

    fn s27_faults() -> (Circuit, FaultList) {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        (c, faults)
    }

    fn config(compaction: Compaction) -> AtpgConfig {
        AtpgConfig {
            compaction,
            // Run the whole generator suite under the option block of the
            // CI leg (`PDF_SIM_BACKEND`/`PDF_SIM_WIDTH`/`PDF_SIM_EVENTS`),
            // not just the default.
            sim: SimOptions::from_env().expect("PDF_SIM_* must parse"),
            ..AtpgConfig::default()
        }
    }

    #[test]
    fn all_heuristics_complete_and_agree_on_coverage_frontier() {
        let (c, faults) = s27_faults();
        let mut counts = Vec::new();
        for h in Compaction::ALL {
            let outcome = BasicAtpg::new(&c).with_config(config(h)).run(&faults);
            // Every reported detection must be real: re-simulate.
            let cov = outcome.tests().coverage(&c, &faults);
            assert_eq!(
                cov.detected(),
                outcome.detected(),
                "{}: fault simulation must agree with bookkeeping",
                h.label()
            );
            counts.push((h, outcome.tests().len(), outcome.detected_total()));
        }
        // Compaction reduces the number of tests vs uncompacted.
        let uncomp_tests = counts[0].1;
        for &(h, tests, _) in &counts[1..] {
            assert!(
                tests <= uncomp_tests,
                "{}: {tests} tests vs uncomp {uncomp_tests}",
                h.label()
            );
        }
    }

    #[test]
    fn uncompacted_builds_one_test_per_undetected_primary() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::Uncompacted))
            .run(&faults);
        // Each test corresponds to exactly one successful primary attempt
        // (duplicate speculative builds are dropped whole, so they do not
        // disturb the ledger).
        assert_eq!(
            outcome.tests().len() + outcome.stats().aborted_primaries,
            outcome.stats().justify.calls
        );
        assert_eq!(outcome.stats().secondary_accepts, 0);
        assert_eq!(outcome.stats().secondary_rejects, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (c, faults) = s27_faults();
        let a = BasicAtpg::new(&c).with_seed(7).run(&faults);
        let b = BasicAtpg::new(&c).with_seed(7).run(&faults);
        assert_eq!(a.tests().len(), b.tests().len());
        assert_eq!(a.detected(), b.detected());
        for (ta, tb) in a.tests().tests().iter().zip(b.tests().tests()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn scoap_guide_pins_fingerprint_and_stays_deterministic() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        assert!(!config_fingerprint(&cfg).contains(":scoap"));
        cfg.guide = Some(Arc::new(BranchGuide::new(
            vec![1; c.line_count()],
            vec![1; c.line_count()],
        )));
        assert!(config_fingerprint(&cfg).ends_with(":scoap"));

        let a = BasicAtpg::new(&c).with_config(cfg.clone()).run(&faults);
        let b = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        assert_eq!(a.tests().to_text(), b.tests().to_text());
        assert_eq!(a.detected(), b.detected());
        // Guided detections are real: re-simulation agrees.
        let cov = a.tests().coverage(&c, &faults);
        assert_eq!(cov.detected(), a.detected());
    }

    #[test]
    fn scoap_guide_orders_primaries_hardest_first() {
        let (c, faults) = s27_faults();
        // A guide with genuinely uneven costs: line index as its own cost
        // (arbitrary but fixed), so assignment costs differ across faults.
        let costs: Vec<u32> = (0..c.line_count() as u32).collect();
        let guide = BranchGuide::new(costs.clone(), costs);
        let mut cfg = config(Compaction::ValueBased);
        cfg.guide = Some(Arc::new(guide.clone()));
        let session = Session::new(&c, cfg, &[&faults]);
        let order = &session.ctx.primary_order;
        assert_eq!(order.len(), faults.len());
        for pair in order.windows(2) {
            let hard = guide.assignment_cost(&session.ctx.faults[pair[0]].assignments);
            let easy = guide.assignment_cost(&session.ctx.faults[pair[1]].assignments);
            assert!(hard >= easy, "primaries must be ordered hardest-first");
        }
    }

    #[test]
    fn thread_count_and_steal_schedule_do_not_change_results() {
        let (c, faults) = s27_faults();
        let reference = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        for threads in [2usize, 4] {
            for force_steal in [false, true] {
                let mut cfg = config(Compaction::ValueBased);
                cfg.threads = threads;
                cfg.force_steal = force_steal;
                let outcome = BasicAtpg::new(&c).with_config(cfg).run(&faults);
                assert_eq!(
                    outcome.tests().to_text(),
                    reference.tests().to_text(),
                    "threads={threads} force_steal={force_steal}"
                );
                assert_eq!(outcome.detected(), reference.detected());
                assert_eq!(outcome.aborted(), reference.aborted());
                assert_eq!(outcome.quarantined(), reference.quarantined());
                assert_eq!(
                    outcome.stats().aborted_primaries,
                    reference.stats().aborted_primaries
                );
                assert_eq!(
                    outcome.stats().builds_discarded,
                    reference.stats().builds_discarded
                );
                assert_eq!(outcome.stats().justify, reference.stats().justify);
            }
        }
    }

    #[test]
    fn enrichment_detects_p1_without_more_tests_than_basic_scale() {
        let (c, faults) = s27_faults();
        let split = TargetSplit::by_cumulative_length(&faults, 10);
        assert!(!split.p1().is_empty());

        let basic = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(split.p0());
        let enriched = EnrichmentAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&split);

        // Test counts are close (identical targets drive both).
        let delta = enriched.tests().len().abs_diff(basic.tests().len());
        assert!(
            delta <= 2,
            "basic {} vs enriched {}",
            basic.tests().len(),
            enriched.tests().len()
        );

        // Enrichment must detect at least one P1 fault on this circuit.
        let p1_detected = enriched.detected_total() - enriched.detected_in_set(0);
        assert!(p1_detected > 0);
    }

    #[test]
    fn enrichment_p0_detection_not_sacrificed() {
        let (c, faults) = s27_faults();
        let split = TargetSplit::by_cumulative_length(&faults, 10);
        let basic = BasicAtpg::new(&c).run(split.p0());
        let enriched = EnrichmentAtpg::new(&c).run(&split);
        let basic_p0 = basic.detected_in_set(0);
        let enriched_p0 = enriched.detected_in_set(0);
        // Small random variation allowed (the paper observes the same).
        assert!(
            enriched_p0 + 2 >= basic_p0,
            "enriched {enriched_p0} vs basic {basic_p0}"
        );
    }

    #[test]
    fn enrichment_coverage_is_backend_independent() {
        // Both completion engines draw the same random fill words per
        // block, so for equal seeds the whole multi-set run — tests,
        // per-set detections, everything — is backend-independent. The
        // acceptance bar is per-set coverage; test identity is stronger
        // and currently holds.
        let synth = pdf_netlist::stand_in_profile("b09")
            .expect("known stand-in")
            .generate()
            .to_circuit()
            .expect("combinational");
        for c in [s27(), synth] {
            let paths = PathEnumerator::new(&c).with_cap(400).enumerate();
            let (faults, _) = FaultList::build(&c, &paths.store);
            let split = TargetSplit::by_cumulative_length(&faults, faults.len() / 4);
            let run = |opts: SimOptions| {
                EnrichmentAtpg::new(&c)
                    .with_config(AtpgConfig {
                        sim: opts,
                        justify_attempts: 2,
                        ..AtpgConfig::default()
                    })
                    .run(&split)
            };
            let scalar = run(SimBackend::Scalar.into());
            let packed = run(SimBackend::Packed.into());
            for set in 0..2 {
                assert_eq!(
                    scalar.detected_in_set(set),
                    packed.detected_in_set(set),
                    "set {set}"
                );
            }
            assert_eq!(scalar.detected(), packed.detected());
            assert_eq!(scalar.tests().tests(), packed.tests().tests());
        }
    }

    #[test]
    fn aborted_primaries_are_not_retried() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c).run(&faults);
        // Aborted flags only on undetected faults.
        for (i, &a) in outcome.aborted().iter().enumerate() {
            if a {
                assert!(!outcome.detected()[i]);
            }
        }
        assert_eq!(
            outcome.stats().aborted_primaries,
            outcome.aborted().iter().filter(|&&a| a).count()
        );
    }

    #[test]
    fn freeze_values_mode_runs_and_detects() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        cfg.secondary_mode = SecondaryMode::FreezeValues;
        let frozen = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        // Bookkeeping still matches post-hoc simulation.
        let cov = frozen.tests().coverage(&c, &faults);
        assert_eq!(cov.detected(), frozen.detected());
        // The paper's argument for regeneration: it detects at least as
        // many secondary targets per test (s27 is tiny, so equality can
        // occur; the margin claim is validated at benchmark scale in the
        // `secondary_mode` experiment).
        let regen = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        assert!(regen.detected_total() + 3 >= frozen.detected_total());
    }

    #[test]
    fn freeze_values_mode_is_deterministic() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        cfg.secondary_mode = SecondaryMode::FreezeValues;
        let a = BasicAtpg::new(&c).with_config(cfg.clone()).run(&faults);
        let b = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        assert_eq!(a.detected(), b.detected());
        assert_eq!(a.tests().len(), b.tests().len());
    }

    #[test]
    fn free_accepts_happen() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        // On s27, tests routinely detect several faults at once.
        assert!(outcome.stats().free_accepts + outcome.stats().secondary_accepts > 0);
    }

    /// Replaces the entry at `slot` with one whose assignments constrain
    /// a line the circuit does not have: simulation lookups, cone
    /// construction and implication all panic on it.
    fn poison(faults: &FaultList, slot: usize) -> FaultList {
        let mut entries: Vec<FaultEntry> = faults.iter().cloned().collect();
        let mut bad = pdf_faults::Assignments::new();
        bad.require(LineId::new(9_999), pdf_logic::Triple::RISING)
            .unwrap();
        entries[slot].assignments = bad;
        entries.into_iter().collect()
    }

    #[test]
    fn poisoned_secondary_is_quarantined_and_the_run_continues() {
        let (c, faults) = s27_faults();
        let slot = faults.len() / 2;
        let poisoned = poison(&faults, slot);
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&poisoned);
        assert_eq!(outcome.stats().faults_quarantined, 1);
        assert!(outcome.quarantined()[slot]);
        assert_eq!(outcome.quarantined().iter().filter(|&&q| q).count(), 1);
        assert!(!outcome.detected()[slot]);
        assert!(!outcome.aborted()[slot], "quarantine is not an abort");
        // The rest of the population is unaffected.
        assert!(!outcome.tests().is_empty());
        assert!(outcome.detected_total() > 0);
    }

    #[test]
    fn poisoned_primary_is_quarantined_at_justification() {
        let (c, faults) = s27_faults();
        // Slot 0 is the first primary under the length-based order.
        let poisoned = poison(&faults, 0);
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&poisoned);
        assert!(outcome.quarantined()[0]);
        assert_eq!(outcome.stats().faults_quarantined, 1);
        assert!(!outcome.tests().is_empty());
    }

    #[test]
    fn poisoned_fault_is_quarantined_by_the_sweep_without_compaction() {
        let (c, faults) = s27_faults();
        let slot = faults.len() / 2;
        let poisoned = poison(&faults, slot);
        // Uncompacted: no secondary pass, so the guarded per-test fault
        // simulation sweep is what trips over the poison.
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::Uncompacted))
            .run(&poisoned);
        assert!(outcome.quarantined()[slot]);
        assert_eq!(outcome.stats().faults_quarantined, 1);
    }

    #[test]
    fn budget_exhaustion_finalizes_a_partial_prefix() {
        let (c, faults) = s27_faults();
        let full = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        assert!(!full.budget_exhausted());
        let mut cfg = config(Compaction::ValueBased);
        cfg.budget =
            RunBudget::unlimited().and_cancel(pdf_runctl::CancelToken::cancel_after_polls(5));
        let partial = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        assert!(partial.budget_exhausted());
        assert!(partial.tests().len() < full.tests().len());
        // Every finalized test is real and a prefix of the full run's.
        let cov = partial.tests().coverage(&c, &faults);
        assert_eq!(cov.detected(), partial.detected());
        for (a, b) in partial.tests().tests().iter().zip(full.tests().tests()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn interrupted_resumed_run_reproduces_the_uninterrupted_set() {
        let (c, faults) = s27_faults();
        let full = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        let path =
            std::env::temp_dir().join(format!("pdf_generator_resume_{}.json", std::process::id()));
        for polls in [1u64, 3, 17, 61, 301] {
            let mut cfg = config(Compaction::ValueBased);
            cfg.budget = RunBudget::unlimited()
                .and_cancel(pdf_runctl::CancelToken::cancel_after_polls(polls));
            cfg.checkpoint = Some(pdf_runctl::CheckpointPolicy::new(&path, 1));
            let partial = BasicAtpg::new(&c).with_config(cfg).run(&faults);
            let checkpoint = pdf_runctl::Checkpoint::load(&path).unwrap();
            assert_eq!(checkpoint.complete, !partial.budget_exhausted());
            let resumed = BasicAtpg::new(&c)
                .with_config(config(Compaction::ValueBased))
                .run_resumed(&faults, &checkpoint)
                .unwrap();
            assert_eq!(
                resumed.tests().to_text(),
                full.tests().to_text(),
                "polls={polls}"
            );
            assert_eq!(resumed.detected(), full.detected(), "polls={polls}");
            assert_eq!(resumed.aborted(), full.aborted(), "polls={polls}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_accepts_a_checkpoint_taken_at_a_different_thread_count() {
        let (c, faults) = s27_faults();
        let full = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        let path = std::env::temp_dir().join(format!(
            "pdf_generator_thread_resume_{}.json",
            std::process::id()
        ));
        let mut cfg = config(Compaction::ValueBased);
        cfg.threads = 4;
        cfg.budget =
            RunBudget::unlimited().and_cancel(pdf_runctl::CancelToken::cancel_after_polls(17));
        cfg.checkpoint = Some(pdf_runctl::CheckpointPolicy::new(&path, 1));
        let _ = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        let checkpoint = pdf_runctl::Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // A 4-thread run's checkpoint resumes on a single thread and
        // still lands the uninterrupted single-thread set: the thread
        // count is not a pinned facet.
        let resumed = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run_resumed(&faults, &checkpoint)
            .unwrap();
        assert_eq!(resumed.tests().to_text(), full.tests().to_text());
        assert_eq!(resumed.detected(), full.detected());
    }

    #[test]
    fn resume_rejects_a_foreign_checkpoint() {
        let (c, faults) = s27_faults();
        let path =
            std::env::temp_dir().join(format!("pdf_generator_reject_{}.json", std::process::id()));
        let mut cfg = config(Compaction::ValueBased);
        cfg.checkpoint = Some(pdf_runctl::CheckpointPolicy::new(&path, 4));
        let _ = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        let checkpoint = pdf_runctl::Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let err = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .with_seed(999)
            .run_resumed(&faults, &checkpoint)
            .unwrap_err();
        assert!(matches!(err, ResumeError::Mismatch { field: "seed", .. }));

        let err = BasicAtpg::new(&c)
            .with_config(config(Compaction::Arbitrary))
            .run_resumed(&faults, &checkpoint)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ResumeError::Mismatch {
                    field: "fingerprint",
                    ..
                }
            ),
            "{err}"
        );

        // A different round batch is a different run: the fingerprint
        // pins it.
        let mut cfg = config(Compaction::ValueBased);
        cfg.batch = 3;
        let err = BasicAtpg::new(&c)
            .with_config(cfg)
            .run_resumed(&faults, &checkpoint)
            .unwrap_err();
        assert!(matches!(
            err,
            ResumeError::Mismatch {
                field: "fingerprint",
                ..
            }
        ));
    }
}
