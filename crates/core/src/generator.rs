//! The test generation procedures: the basic single-set generator with its
//! compaction heuristics (paper Sec. 2.2) and the multi-set enrichment
//! procedure (paper Sec. 3.2).
//!
//! Both share one engine. A test is built around a **primary target
//! fault** taken from `P_0`; **secondary target faults** are then folded
//! into the same test one at a time — a secondary candidate is accepted if
//! the justification procedure finds a test satisfying the union of the
//! necessary assignments of everything accepted so far. Under enrichment,
//! candidates are drawn from `P_0` first and only then from `P_1` (or the
//! further sets of a k-set split), so the number of tests stays determined
//! by `P_0` alone while `P_1` detections come for free.

use pdf_faults::{Assignments, FaultEntry, FaultList};
use pdf_logic::Value;
use pdf_netlist::{Circuit, LineId, SplitMix64};

use pdf_sim::SimBackend;

use crate::{Justified, Justifier, JustifyStats, TargetSplit, TestSet, DEFAULT_CONE_CACHE};

/// The compaction heuristic used to order primary and secondary targets
/// (paper Sec. 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Compaction {
    /// No secondary targets at all: one primary per test (the paper's
    /// `uncomp` baseline).
    Uncompacted,
    /// Primary and secondary targets in fault-list order. Our fault lists
    /// are sorted longest-first by construction, so to keep this order
    /// genuinely arbitrary it is a deterministic seeded shuffle (the
    /// paper's lists carry enumeration order, which is likewise
    /// uncorrelated by intent).
    Arbitrary,
    /// Longest path first, for both primary and secondary targets.
    LengthBased,
    /// Longest path first for the primary; secondaries minimize the number
    /// of new value components `n_Δ(p_i)` the test must additionally
    /// satisfy. The paper's choice, and the default.
    #[default]
    ValueBased,
}

impl Compaction {
    /// All heuristics, in the paper's table order.
    pub const ALL: [Compaction; 4] = [
        Compaction::Uncompacted,
        Compaction::Arbitrary,
        Compaction::LengthBased,
        Compaction::ValueBased,
    ];

    /// The short name used in the paper's tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Compaction::Uncompacted => "uncomp",
            Compaction::Arbitrary => "arbit",
            Compaction::LengthBased => "length",
            Compaction::ValueBased => "values",
        }
    }
}

/// How an accepted test is revised when a secondary target is added.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SecondaryMode {
    /// Regenerate the test from scratch for the grown requirement union —
    /// the paper's choice (Sec. 2.2): "new values can be specified under
    /// t ... if they are more suitable for detecting p_i".
    #[default]
    Regenerate,
    /// Freeze the input values committed so far and only specify further
    /// ones — the classical dynamic-compaction style of Goel & Rosales
    /// (the paper's reference [8]), kept as an ablation: the paper argues
    /// regeneration detects more secondary targets.
    FreezeValues,
}

impl SecondaryMode {
    /// A short label for reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SecondaryMode::Regenerate => "regenerate",
            SecondaryMode::FreezeValues => "freeze",
        }
    }
}

/// Configuration shared by the basic and enrichment generators.
#[derive(Clone, Copy, Debug)]
pub struct AtpgConfig {
    /// Seed for every random choice (justification decisions, the
    /// arbitrary order, leftover input filling). Equal seeds give
    /// bit-identical outcomes.
    pub seed: u64,
    /// The compaction heuristic.
    pub compaction: Compaction,
    /// Randomized 64-lane completion blocks per justification call (the
    /// paper uses one attempt; a few more blocks trade run time for fewer
    /// random misses).
    pub justify_attempts: u32,
    /// How secondary targets extend the test under construction.
    pub secondary_mode: SecondaryMode,
    /// The simulation backend the justifier evaluates completion blocks
    /// with. Coverage per set is backend-independent for a fixed seed.
    pub backend: SimBackend,
    /// Capacity of the justifier's cone-topology LRU cache (entries);
    /// `0` disables caching.
    pub cone_cache: usize,
}

impl Default for AtpgConfig {
    fn default() -> AtpgConfig {
        AtpgConfig {
            seed: 2002,
            compaction: Compaction::ValueBased,
            justify_attempts: 1,
            secondary_mode: SecondaryMode::default(),
            backend: SimBackend::default(),
            cone_cache: DEFAULT_CONE_CACHE,
        }
    }
}

/// Counters describing a generation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtpgStats {
    /// Primary targets that failed justification (not retried).
    pub aborted_primaries: usize,
    /// Secondary candidates accepted via a justification run.
    pub secondary_accepts: usize,
    /// Secondary candidates accepted for free (already satisfied by the
    /// test built so far).
    pub free_accepts: usize,
    /// Secondary candidates rejected by a failed justification.
    pub secondary_rejects: usize,
    /// Secondary candidates rejected because their requirements conflict
    /// with the accumulated union (no justification attempted).
    pub conflict_rejects: usize,
    /// Justifier counters.
    pub justify: JustifyStats,
}

/// The result of a generation run over one or more target sets.
#[derive(Clone, Debug)]
pub struct AtpgOutcome {
    test_set: TestSet,
    detected: Vec<bool>,
    aborted: Vec<bool>,
    set_sizes: Vec<usize>,
    stats: AtpgStats,
}

impl AtpgOutcome {
    /// The generated tests.
    #[must_use]
    pub fn tests(&self) -> &TestSet {
        &self.test_set
    }

    /// Per-fault detection flags over the concatenation of the target
    /// sets (set 0 first).
    #[must_use]
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Per-fault abort flags (only primaries can abort).
    #[must_use]
    pub fn aborted(&self) -> &[bool] {
        &self.aborted
    }

    /// The sizes of the target sets, in order.
    #[must_use]
    pub fn set_sizes(&self) -> &[usize] {
        &self.set_sizes
    }

    /// Number of faults detected within target set `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn detected_in_set(&self, set: usize) -> usize {
        let (lo, hi) = self.set_range(set);
        self.detected[lo..hi].iter().filter(|&&d| d).count()
    }

    /// Total detected faults across all sets.
    #[must_use]
    pub fn detected_total(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Run counters.
    #[must_use]
    pub fn stats(&self) -> &AtpgStats {
        &self.stats
    }

    fn set_range(&self, set: usize) -> (usize, usize) {
        let lo: usize = self.set_sizes[..set].iter().sum();
        (lo, lo + self.set_sizes[set])
    }
}

/// The basic test generation procedure over a single target set
/// (paper Sec. 2).
///
/// # Example
///
/// ```
/// use pdf_atpg::{AtpgConfig, BasicAtpg, Compaction};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
///
/// let outcome = BasicAtpg::new(&circuit)
///     .with_config(AtpgConfig { compaction: Compaction::ValueBased, ..Default::default() })
///     .run(&faults);
/// assert!(outcome.detected_in_set(0) > 0);
/// assert!(outcome.tests().len() <= faults.len());
/// ```
#[derive(Clone, Debug)]
pub struct BasicAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> BasicAtpg<'c> {
    /// Creates a generator with the default configuration.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> BasicAtpg<'c> {
        BasicAtpg {
            circuit,
            config: AtpgConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AtpgConfig) -> BasicAtpg<'c> {
        self.config = config;
        self
    }

    /// Convenience: replaces just the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> BasicAtpg<'c> {
        self.config.seed = seed;
        self
    }

    /// Runs test generation for `targets`.
    #[must_use]
    pub fn run(&self, targets: &FaultList) -> AtpgOutcome {
        Session::new(self.circuit, self.config, &[targets]).run()
    }
}

/// The proposed test enrichment procedure over a multi-set target split
/// (paper Sec. 3): primaries come from `P_0` only, secondaries from `P_0`
/// first and then from the following sets, so the test count stays
/// determined by `P_0`.
///
/// The compaction heuristic of the underlying generation is the value-based
/// one by default, as selected in the paper.
///
/// # Example
///
/// ```
/// use pdf_atpg::{EnrichmentAtpg, TargetSplit};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
/// let split = TargetSplit::by_cumulative_length(&faults, 10);
///
/// let outcome = EnrichmentAtpg::new(&circuit).with_seed(2002).run(&split);
/// // P1 detections come on top of P0's, with tests driven by P0 alone.
/// assert!(outcome.detected_total() >= outcome.detected_in_set(0));
/// ```
#[derive(Clone, Debug)]
pub struct EnrichmentAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> EnrichmentAtpg<'c> {
    /// Creates an enrichment generator with the default configuration.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> EnrichmentAtpg<'c> {
        EnrichmentAtpg {
            circuit,
            config: AtpgConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AtpgConfig) -> EnrichmentAtpg<'c> {
        self.config = config;
        self
    }

    /// Convenience: replaces just the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> EnrichmentAtpg<'c> {
        self.config.seed = seed;
        self
    }

    /// Runs enrichment over the split's sets.
    #[must_use]
    pub fn run(&self, split: &TargetSplit) -> AtpgOutcome {
        let _phase = pdf_telemetry::Span::enter("enrich");
        let sets: Vec<&FaultList> = split.sets().iter().collect();
        Session::new(self.circuit, self.config, &sets).run()
    }
}

/// Internal engine shared by both public procedures.
struct Session<'c, 'f> {
    circuit: &'c Circuit,
    config: AtpgConfig,
    justifier: Justifier<'c>,
    /// All faults, set 0 first.
    faults: Vec<&'f FaultEntry>,
    /// First index of each set in `faults` (plus a final sentinel).
    set_starts: Vec<usize>,
    detected: Vec<bool>,
    aborted: Vec<bool>,
    /// Primary (and arbit/length secondary) order over set-0 indices.
    primary_order: Vec<usize>,
    stats: AtpgStats,
}

impl<'c, 'f> Session<'c, 'f> {
    fn new(circuit: &'c Circuit, config: AtpgConfig, sets: &[&'f FaultList]) -> Session<'c, 'f> {
        let mut faults = Vec::new();
        let mut set_starts = vec![0usize];
        for set in sets {
            faults.extend(set.iter());
            set_starts.push(faults.len());
        }
        // Decorrelate the shuffle stream from the justifier's stream.
        let mut rng = SplitMix64::new(config.seed ^ 0x0A1B_2C3D_4E5F_6071);
        let mut primary_order: Vec<usize> = (0..set_starts[1]).collect();
        if matches!(config.compaction, Compaction::Arbitrary) {
            // Fisher-Yates with the deterministic generator.
            for i in (1..primary_order.len()).rev() {
                let j = rng.next_below(i + 1);
                primary_order.swap(i, j);
            }
        }
        let justifier = Justifier::new(circuit, config.seed)
            .with_attempts(config.justify_attempts)
            .with_backend(config.backend)
            .with_cone_cache(config.cone_cache);
        Session {
            circuit,
            config,
            justifier,
            faults,
            set_starts,
            detected: vec![false; 0],
            aborted: vec![false; 0],
            primary_order,
            stats: AtpgStats::default(),
        }
    }

    fn run(mut self) -> AtpgOutcome {
        let _phase = pdf_telemetry::Span::enter("generate");
        let n = self.faults.len();
        self.detected = vec![false; n];
        self.aborted = vec![false; n];
        let mut test_set = TestSet::new();

        while let Some(primary) = self.next_primary() {
            pdf_telemetry::count(pdf_telemetry::counters::FAULTS_TARGETED, 1);
            let Some(justified) = self.justifier.justify(&self.faults[primary].assignments) else {
                self.aborted[primary] = true;
                self.stats.aborted_primaries += 1;
                continue;
            };
            let mut union = self.faults[primary].assignments.clone();
            // Under the freeze-values mode, input values committed so far
            // are pinned for every later secondary (Goel-Rosales style).
            let mut frozen: Vec<(LineId, Value, Value)> =
                if matches!(self.config.secondary_mode, SecondaryMode::FreezeValues) {
                    justified.assignment.clone()
                } else {
                    Vec::new()
                };
            let mut current = justified;

            if !matches!(self.config.compaction, Compaction::Uncompacted) {
                self.extend_with_secondaries(primary, &mut union, &mut current, &mut frozen);
            }

            // Drop every fault the finished test detects (the paper's
            // per-test fault simulation), fanned out over fault chunks.
            for i in pdf_sim::newly_satisfied(&current.waves, &self.faults, &self.detected) {
                self.detected[i] = true;
            }
            debug_assert!(self.detected[primary], "primary must be detected");
            test_set.push(current.test);
        }

        self.stats.justify = self.justifier.stats();
        let set_sizes = self.set_starts.windows(2).map(|w| w[1] - w[0]).collect();
        AtpgOutcome {
            test_set,
            detected: self.detected,
            aborted: self.aborted,
            set_sizes,
            stats: self.stats,
        }
    }

    /// The next set-0 fault to build a test around: undetected, not yet
    /// tried as a primary; longest-first except under the arbitrary order.
    fn next_primary(&self) -> Option<usize> {
        self.primary_order
            .iter()
            .copied()
            .find(|&i| !self.detected[i] && !self.aborted[i])
    }

    /// Folds secondary targets into the current test, set by set.
    fn extend_with_secondaries(
        &mut self,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let set_count = self.set_starts.len() - 1;
        for set in 0..set_count {
            // Per the paper, faults of a later set are considered only
            // after all faults of the earlier sets.
            match self.config.compaction {
                Compaction::Uncompacted => unreachable!("checked by caller"),
                Compaction::Arbitrary | Compaction::LengthBased => {
                    self.ordered_pass(set, primary, union, current, frozen);
                }
                Compaction::ValueBased => {
                    self.value_based_pass(set, primary, union, current, frozen);
                }
            }
        }
    }

    /// Secondary candidates in a fixed order (fault-list order for the
    /// length-based heuristic, the shuffled order for the arbitrary one).
    fn ordered_pass(
        &mut self,
        set: usize,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let (lo, hi) = (self.set_starts[set], self.set_starts[set + 1]);
        let order: Vec<usize> = if set == 0 {
            self.primary_order.clone()
        } else {
            (lo..hi).collect()
        };
        for i in order {
            if self.eligible_secondary(i, primary) {
                self.try_candidate(i, union, current, frozen);
            }
        }
    }

    /// The value-based heuristic: repeatedly take the compatible candidate
    /// with the fewest new value components `n_Δ`; Δ-sets stay valid
    /// between accepts because the union only changes on accept.
    fn value_based_pass(
        &mut self,
        set: usize,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let (lo, hi) = (self.set_starts[set], self.set_starts[set + 1]);
        let mut considered = vec![false; hi - lo];
        loop {
            // Rank all unconsidered candidates by n_Δ against the current
            // union; conflicting candidates are rejected outright.
            let mut ranked: Vec<(usize, usize)> = Vec::new();
            for i in lo..hi {
                if considered[i - lo] || !self.eligible_secondary(i, primary) {
                    continue;
                }
                match union.delta_count(&self.faults[i].assignments) {
                    Some(delta) => ranked.push((delta, i)),
                    None => {
                        considered[i - lo] = true;
                        self.stats.conflict_rejects += 1;
                    }
                }
            }
            ranked.sort_unstable();
            let mut accepted = false;
            for (_, i) in ranked {
                considered[i - lo] = true;
                if self.try_candidate(i, union, current, frozen) {
                    accepted = true;
                    break; // union changed: recompute the Δ ranking
                }
            }
            if !accepted {
                break;
            }
        }
    }

    fn eligible_secondary(&self, i: usize, primary: usize) -> bool {
        i != primary && !self.detected[i] && !self.aborted[i]
    }

    /// Attempts to add fault `i` to the current test. Returns `true` when
    /// the union of requirements changed (the test was regenerated).
    fn try_candidate(
        &mut self,
        i: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) -> bool {
        let a = &self.faults[i].assignments;
        // Free acceptance: the test built so far already detects it. Its
        // requirements still join the union so that later regenerations
        // keep detecting it; if that grows the union, the caller must
        // recompute its Δ ranking (the paper recomputes Δ per selection).
        if a.satisfied_by(&current.waves) {
            let mut grew = false;
            if let Some(merged) = union.merged(a) {
                grew = merged != *union;
                *union = merged;
            }
            self.detected[i] = true;
            self.stats.free_accepts += 1;
            pdf_telemetry::count(pdf_telemetry::counters::SECONDARY_DETECTED, 1);
            return grew;
        }
        let Some(merged) = union.merged(a) else {
            self.stats.conflict_rejects += 1;
            return false;
        };
        // Implication pre-filter: a contradiction proves no test exists
        // for the merged requirements, so the (much costlier) randomized
        // justification is skipped. Sound — it only rejects candidates
        // justification could never accept.
        if pdf_faults::Implicator::from_assignments(self.circuit, &merged).is_err() {
            self.stats.conflict_rejects += 1;
            return false;
        }
        let result = match self.config.secondary_mode {
            SecondaryMode::Regenerate => self.justifier.justify(&merged),
            SecondaryMode::FreezeValues => self.justifier.justify_seeded(&merged, frozen),
        };
        match result {
            Some(justified) => {
                if matches!(self.config.secondary_mode, SecondaryMode::FreezeValues) {
                    // Pin the newly committed input values for the rest of
                    // this test's construction.
                    for &(line, v1, v2) in &justified.assignment {
                        if !frozen.iter().any(|&(l, _, _)| l == line) {
                            frozen.push((line, v1, v2));
                        }
                    }
                }
                *union = merged;
                *current = justified;
                self.detected[i] = true;
                self.stats.secondary_accepts += 1;
                pdf_telemetry::count(pdf_telemetry::counters::SECONDARY_DETECTED, 1);
                true
            }
            None => {
                self.stats.secondary_rejects += 1;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;
    use pdf_paths::PathEnumerator;

    fn s27_faults() -> (Circuit, FaultList) {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        (c, faults)
    }

    fn config(compaction: Compaction) -> AtpgConfig {
        AtpgConfig {
            compaction,
            // Run the whole generator suite under the backend of the CI
            // leg (`PDF_SIM_BACKEND`), not just the default.
            backend: SimBackend::from_env().expect("PDF_SIM_BACKEND must parse"),
            ..AtpgConfig::default()
        }
    }

    #[test]
    fn all_heuristics_complete_and_agree_on_coverage_frontier() {
        let (c, faults) = s27_faults();
        let mut counts = Vec::new();
        for h in Compaction::ALL {
            let outcome = BasicAtpg::new(&c).with_config(config(h)).run(&faults);
            // Every reported detection must be real: re-simulate.
            let cov = outcome.tests().coverage(&c, &faults);
            assert_eq!(
                cov.detected(),
                outcome.detected(),
                "{}: fault simulation must agree with bookkeeping",
                h.label()
            );
            counts.push((h, outcome.tests().len(), outcome.detected_total()));
        }
        // Compaction reduces the number of tests vs uncompacted.
        let uncomp_tests = counts[0].1;
        for &(h, tests, _) in &counts[1..] {
            assert!(
                tests <= uncomp_tests,
                "{}: {tests} tests vs uncomp {uncomp_tests}",
                h.label()
            );
        }
    }

    #[test]
    fn uncompacted_builds_one_test_per_undetected_primary() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::Uncompacted))
            .run(&faults);
        // Each test corresponds to exactly one successful primary attempt.
        assert_eq!(
            outcome.tests().len() + outcome.stats().aborted_primaries,
            outcome.stats().justify.calls
        );
        assert_eq!(outcome.stats().secondary_accepts, 0);
        assert_eq!(outcome.stats().secondary_rejects, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (c, faults) = s27_faults();
        let a = BasicAtpg::new(&c).with_seed(7).run(&faults);
        let b = BasicAtpg::new(&c).with_seed(7).run(&faults);
        assert_eq!(a.tests().len(), b.tests().len());
        assert_eq!(a.detected(), b.detected());
        for (ta, tb) in a.tests().tests().iter().zip(b.tests().tests()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn enrichment_detects_p1_without_more_tests_than_basic_scale() {
        let (c, faults) = s27_faults();
        let split = TargetSplit::by_cumulative_length(&faults, 10);
        assert!(!split.p1().is_empty());

        let basic = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(split.p0());
        let enriched = EnrichmentAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&split);

        // Test counts are close (identical targets drive both).
        let delta = enriched.tests().len().abs_diff(basic.tests().len());
        assert!(
            delta <= 2,
            "basic {} vs enriched {}",
            basic.tests().len(),
            enriched.tests().len()
        );

        // Enrichment must detect at least one P1 fault on this circuit.
        let p1_detected = enriched.detected_total() - enriched.detected_in_set(0);
        assert!(p1_detected > 0);
    }

    #[test]
    fn enrichment_p0_detection_not_sacrificed() {
        let (c, faults) = s27_faults();
        let split = TargetSplit::by_cumulative_length(&faults, 10);
        let basic = BasicAtpg::new(&c).run(split.p0());
        let enriched = EnrichmentAtpg::new(&c).run(&split);
        let basic_p0 = basic.detected_in_set(0);
        let enriched_p0 = enriched.detected_in_set(0);
        // Small random variation allowed (the paper observes the same).
        assert!(
            enriched_p0 + 2 >= basic_p0,
            "enriched {enriched_p0} vs basic {basic_p0}"
        );
    }

    #[test]
    fn enrichment_coverage_is_backend_independent() {
        // Both completion engines draw the same random fill words per
        // block, so for equal seeds the whole multi-set run — tests,
        // per-set detections, everything — is backend-independent. The
        // acceptance bar is per-set coverage; test identity is stronger
        // and currently holds.
        let synth = pdf_netlist::stand_in_profile("b09")
            .expect("known stand-in")
            .generate()
            .to_circuit()
            .expect("combinational");
        for c in [s27(), synth] {
            let paths = PathEnumerator::new(&c).with_cap(400).enumerate();
            let (faults, _) = FaultList::build(&c, &paths.store);
            let split = TargetSplit::by_cumulative_length(&faults, faults.len() / 4);
            let run = |backend| {
                EnrichmentAtpg::new(&c)
                    .with_config(AtpgConfig {
                        backend,
                        justify_attempts: 2,
                        ..AtpgConfig::default()
                    })
                    .run(&split)
            };
            let scalar = run(SimBackend::Scalar);
            let packed = run(SimBackend::Packed);
            for set in 0..2 {
                assert_eq!(
                    scalar.detected_in_set(set),
                    packed.detected_in_set(set),
                    "set {set}"
                );
            }
            assert_eq!(scalar.detected(), packed.detected());
            assert_eq!(scalar.tests().tests(), packed.tests().tests());
        }
    }

    #[test]
    fn aborted_primaries_are_not_retried() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c).run(&faults);
        // Aborted flags only on undetected faults.
        for (i, &a) in outcome.aborted().iter().enumerate() {
            if a {
                assert!(!outcome.detected()[i]);
            }
        }
        assert_eq!(
            outcome.stats().aborted_primaries,
            outcome.aborted().iter().filter(|&&a| a).count()
        );
    }

    #[test]
    fn freeze_values_mode_runs_and_detects() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        cfg.secondary_mode = SecondaryMode::FreezeValues;
        let frozen = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        // Bookkeeping still matches post-hoc simulation.
        let cov = frozen.tests().coverage(&c, &faults);
        assert_eq!(cov.detected(), frozen.detected());
        // The paper's argument for regeneration: it detects at least as
        // many secondary targets per test (s27 is tiny, so equality can
        // occur; the margin claim is validated at benchmark scale in the
        // `secondary_mode` experiment).
        let regen = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        assert!(regen.detected_total() + 3 >= frozen.detected_total());
    }

    #[test]
    fn freeze_values_mode_is_deterministic() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        cfg.secondary_mode = SecondaryMode::FreezeValues;
        let a = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        let b = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        assert_eq!(a.detected(), b.detected());
        assert_eq!(a.tests().len(), b.tests().len());
    }

    #[test]
    fn free_accepts_happen() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        // On s27, tests routinely detect several faults at once.
        assert!(outcome.stats().free_accepts + outcome.stats().secondary_accepts > 0);
    }
}
