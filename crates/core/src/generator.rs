//! The test generation procedures: the basic single-set generator with its
//! compaction heuristics (paper Sec. 2.2) and the multi-set enrichment
//! procedure (paper Sec. 3.2).
//!
//! Both share one engine. A test is built around a **primary target
//! fault** taken from `P_0`; **secondary target faults** are then folded
//! into the same test one at a time — a secondary candidate is accepted if
//! the justification procedure finds a test satisfying the union of the
//! necessary assignments of everything accepted so far. Under enrichment,
//! candidates are drawn from `P_0` first and only then from `P_1` (or the
//! further sets of a k-set split), so the number of tests stays determined
//! by `P_0` alone while `P_1` detections come for free.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pdf_faults::{Assignments, FaultEntry, FaultList};
use pdf_logic::Value;
use pdf_netlist::{Circuit, LineId, SplitMix64};
use pdf_runctl::{Checkpoint, CheckpointPolicy, RunBudget, CHECKPOINT_VERSION};

use pdf_sim::SimOptions;

use crate::testset::ParseTestSetError;
use crate::{Justified, Justifier, JustifyStats, TargetSplit, TestSet, DEFAULT_CONE_CACHE};

/// The compaction heuristic used to order primary and secondary targets
/// (paper Sec. 2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Compaction {
    /// No secondary targets at all: one primary per test (the paper's
    /// `uncomp` baseline).
    Uncompacted,
    /// Primary and secondary targets in fault-list order. Our fault lists
    /// are sorted longest-first by construction, so to keep this order
    /// genuinely arbitrary it is a deterministic seeded shuffle (the
    /// paper's lists carry enumeration order, which is likewise
    /// uncorrelated by intent).
    Arbitrary,
    /// Longest path first, for both primary and secondary targets.
    LengthBased,
    /// Longest path first for the primary; secondaries minimize the number
    /// of new value components `n_Δ(p_i)` the test must additionally
    /// satisfy. The paper's choice, and the default.
    #[default]
    ValueBased,
}

impl Compaction {
    /// All heuristics, in the paper's table order.
    pub const ALL: [Compaction; 4] = [
        Compaction::Uncompacted,
        Compaction::Arbitrary,
        Compaction::LengthBased,
        Compaction::ValueBased,
    ];

    /// The short name used in the paper's tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Compaction::Uncompacted => "uncomp",
            Compaction::Arbitrary => "arbit",
            Compaction::LengthBased => "length",
            Compaction::ValueBased => "values",
        }
    }
}

/// How an accepted test is revised when a secondary target is added.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SecondaryMode {
    /// Regenerate the test from scratch for the grown requirement union —
    /// the paper's choice (Sec. 2.2): "new values can be specified under
    /// t ... if they are more suitable for detecting p_i".
    #[default]
    Regenerate,
    /// Freeze the input values committed so far and only specify further
    /// ones — the classical dynamic-compaction style of Goel & Rosales
    /// (the paper's reference [8]), kept as an ablation: the paper argues
    /// regeneration detects more secondary targets.
    FreezeValues,
}

impl SecondaryMode {
    /// A short label for reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SecondaryMode::Regenerate => "regenerate",
            SecondaryMode::FreezeValues => "freeze",
        }
    }
}

/// Configuration shared by the basic and enrichment generators.
#[derive(Clone, Debug)]
pub struct AtpgConfig {
    /// Seed for every random choice (justification decisions, the
    /// arbitrary order, leftover input filling). Equal seeds give
    /// bit-identical outcomes.
    pub seed: u64,
    /// The compaction heuristic.
    pub compaction: Compaction,
    /// Randomized 64-lane completion blocks per justification call (the
    /// paper uses one attempt; a few more blocks trade run time for fewer
    /// random misses).
    pub justify_attempts: u32,
    /// How secondary targets extend the test under construction.
    pub secondary_mode: SecondaryMode,
    /// The simulation options (backend, packed tile width, event-driven
    /// propagation) the justifier evaluates completion blocks with. All
    /// combinations produce identical tests and coverage for a fixed
    /// seed; a bare [`SimBackend`] converts via `.into()`.
    pub sim: SimOptions,
    /// Capacity of the justifier's cone-topology LRU cache (entries);
    /// `0` disables caching.
    pub cone_cache: usize,
    /// Cooperative time/cancellation budget. An exhausted budget makes the
    /// run stop targeting new faults, discard any test still under
    /// construction, and finalize the partial test set with
    /// [`AtpgOutcome::budget_exhausted`] set. Exhaustion is polled at
    /// fault-loop and justification-attempt granularity, so a run degrades
    /// gracefully rather than overshooting its deadline.
    pub budget: RunBudget,
    /// Crash-safe checkpointing: when set, run state is persisted
    /// atomically to the policy's file after every `every` completed
    /// primary targets (plus once when the run ends). Feed the file back
    /// through a `run_resumed` call to continue an interrupted run.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Per-fault panic quarantine. When on (the default), a panic raised
    /// while processing one fault — justification, the implication
    /// pre-filter, free-acceptance checks, or the per-test fault
    /// simulation sweep — is caught, attributed to the offending fault,
    /// and recorded in [`AtpgOutcome::quarantined`]; the run continues
    /// with the remaining faults. When off, such panics propagate.
    pub quarantine: bool,
    /// Statically learned implications consulted by the secondary-target
    /// conflict pre-filter. Learned conflicts are real conflicts, so
    /// attaching a table only rejects merge candidates whose justification
    /// was doomed anyway — coverage is never lost, the doomed candidates
    /// just skip the randomized justification attempt (which can shift
    /// later random draws, so equal seeds with and without a table need
    /// not produce identical sets). The checkpoint fingerprint records
    /// the table size when one is set.
    pub learned: Option<std::sync::Arc<pdf_faults::LearnedImplications>>,
}

impl Default for AtpgConfig {
    fn default() -> AtpgConfig {
        AtpgConfig {
            seed: 2002,
            compaction: Compaction::ValueBased,
            justify_attempts: 1,
            secondary_mode: SecondaryMode::default(),
            sim: SimOptions::default(),
            cone_cache: DEFAULT_CONE_CACHE,
            budget: RunBudget::unlimited(),
            checkpoint: None,
            quarantine: true,
            learned: None,
        }
    }
}

/// The configuration facets a checkpoint pins: resuming under a different
/// compaction heuristic, secondary mode, attempt count or backend would
/// silently diverge from the interrupted run, so resume refuses them.
/// Tile width and event mode are deliberately *not* pinned: witnesses are
/// byte-identical across them, so resuming a run on a machine with a
/// different vector width is safe.
#[must_use]
pub fn config_fingerprint(config: &AtpgConfig) -> String {
    let mut fp = format!(
        "{}:{}:{}:{}",
        config.compaction.label(),
        config.secondary_mode.label(),
        config.justify_attempts,
        config.sim.backend
    );
    if let Some(table) = &config.learned {
        // A learned table changes which secondaries reach justification
        // (and therefore the random stream); resuming without the same
        // table would diverge. Plain configs keep the historical shape.
        fp.push_str(&format!(":learned={}", table.len()));
    }
    fp
}

/// Counters describing a generation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtpgStats {
    /// Primary targets that failed justification (not retried).
    pub aborted_primaries: usize,
    /// Secondary candidates accepted via a justification run.
    pub secondary_accepts: usize,
    /// Secondary candidates accepted for free (already satisfied by the
    /// test built so far).
    pub free_accepts: usize,
    /// Secondary candidates rejected by a failed justification.
    pub secondary_rejects: usize,
    /// Secondary candidates rejected because their requirements conflict
    /// with the accumulated union (no justification attempted).
    pub conflict_rejects: usize,
    /// Faults quarantined after panicking mid-processing.
    pub faults_quarantined: usize,
    /// Checkpoint files written (including the final one).
    pub checkpoints_written: usize,
    /// Justifier counters.
    pub justify: JustifyStats,
}

/// A checkpoint refused by a `run_resumed` call: the file does not match
/// the run it is being fed into, or its carried tests do not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// A pinned facet of the checkpoint disagrees with the current run.
    Mismatch {
        /// Which facet ("circuit", "seed", "fingerprint", ...).
        field: &'static str,
        /// The checkpoint's value.
        expected: String,
        /// The current run's value.
        found: String,
    },
    /// The carried test lines do not parse back into a test set.
    BadTests(ParseTestSetError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this run: {field} is `{expected}` in the checkpoint \
                 but `{found}` here"
            ),
            ResumeError::BadTests(e) => write!(f, "checkpoint carries malformed tests: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::BadTests(e) => Some(e),
            ResumeError::Mismatch { .. } => None,
        }
    }
}

/// The result of a generation run over one or more target sets.
#[derive(Clone, Debug)]
pub struct AtpgOutcome {
    test_set: TestSet,
    detected: Vec<bool>,
    aborted: Vec<bool>,
    quarantined: Vec<bool>,
    set_sizes: Vec<usize>,
    stats: AtpgStats,
    budget_exhausted: bool,
}

impl AtpgOutcome {
    /// The generated tests.
    #[must_use]
    pub fn tests(&self) -> &TestSet {
        &self.test_set
    }

    /// Per-fault detection flags over the concatenation of the target
    /// sets (set 0 first).
    #[must_use]
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Per-fault abort flags (only primaries can abort).
    #[must_use]
    pub fn aborted(&self) -> &[bool] {
        &self.aborted
    }

    /// Per-fault quarantine flags: faults skipped after panicking
    /// mid-processing (the reported skip-list).
    #[must_use]
    pub fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    /// Whether the run stopped because its time budget or cancellation
    /// token fired. The test set is then a valid partial result: every
    /// test in it is complete and its detections are real, but undetected
    /// faults were simply never reached.
    #[must_use]
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// The sizes of the target sets, in order.
    #[must_use]
    pub fn set_sizes(&self) -> &[usize] {
        &self.set_sizes
    }

    /// Number of faults detected within target set `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn detected_in_set(&self, set: usize) -> usize {
        let (lo, hi) = self.set_range(set);
        self.detected[lo..hi].iter().filter(|&&d| d).count()
    }

    /// Total detected faults across all sets.
    #[must_use]
    pub fn detected_total(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Run counters.
    #[must_use]
    pub fn stats(&self) -> &AtpgStats {
        &self.stats
    }

    fn set_range(&self, set: usize) -> (usize, usize) {
        let lo: usize = self.set_sizes[..set].iter().sum();
        (lo, lo + self.set_sizes[set])
    }
}

/// The basic test generation procedure over a single target set
/// (paper Sec. 2).
///
/// # Example
///
/// ```
/// use pdf_atpg::{AtpgConfig, BasicAtpg, Compaction};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
///
/// let outcome = BasicAtpg::new(&circuit)
///     .with_config(AtpgConfig { compaction: Compaction::ValueBased, ..Default::default() })
///     .run(&faults);
/// assert!(outcome.detected_in_set(0) > 0);
/// assert!(outcome.tests().len() <= faults.len());
/// ```
#[derive(Clone, Debug)]
pub struct BasicAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> BasicAtpg<'c> {
    /// Creates a generator with the default configuration.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> BasicAtpg<'c> {
        BasicAtpg {
            circuit,
            config: AtpgConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AtpgConfig) -> BasicAtpg<'c> {
        self.config = config;
        self
    }

    /// Convenience: replaces just the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> BasicAtpg<'c> {
        self.config.seed = seed;
        self
    }

    /// Runs test generation for `targets`.
    #[must_use]
    pub fn run(&self, targets: &FaultList) -> AtpgOutcome {
        Session::new(self.circuit, self.config.clone(), &[targets])
            .run(None)
            .expect("a fresh run cannot fail on resume validation")
    }

    /// Runs test generation for `targets`, continuing from `checkpoint` —
    /// the crash-recovery entry point. For a fixed seed the resumed run
    /// produces the identical test set an uninterrupted run would have.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] when the checkpoint does not belong to this
    /// circuit/configuration/target-set combination.
    pub fn run_resumed(
        &self,
        targets: &FaultList,
        checkpoint: &Checkpoint,
    ) -> Result<AtpgOutcome, ResumeError> {
        Session::new(self.circuit, self.config.clone(), &[targets]).run(Some(checkpoint))
    }
}

/// The proposed test enrichment procedure over a multi-set target split
/// (paper Sec. 3): primaries come from `P_0` only, secondaries from `P_0`
/// first and then from the following sets, so the test count stays
/// determined by `P_0`.
///
/// The compaction heuristic of the underlying generation is the value-based
/// one by default, as selected in the paper.
///
/// # Example
///
/// ```
/// use pdf_atpg::{EnrichmentAtpg, TargetSplit};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
/// let split = TargetSplit::by_cumulative_length(&faults, 10);
///
/// let outcome = EnrichmentAtpg::new(&circuit).with_seed(2002).run(&split);
/// // P1 detections come on top of P0's, with tests driven by P0 alone.
/// assert!(outcome.detected_total() >= outcome.detected_in_set(0));
/// ```
#[derive(Clone, Debug)]
pub struct EnrichmentAtpg<'c> {
    circuit: &'c Circuit,
    config: AtpgConfig,
}

impl<'c> EnrichmentAtpg<'c> {
    /// Creates an enrichment generator with the default configuration.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> EnrichmentAtpg<'c> {
        EnrichmentAtpg {
            circuit,
            config: AtpgConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: AtpgConfig) -> EnrichmentAtpg<'c> {
        self.config = config;
        self
    }

    /// Convenience: replaces just the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> EnrichmentAtpg<'c> {
        self.config.seed = seed;
        self
    }

    /// Runs enrichment over the split's sets.
    #[must_use]
    pub fn run(&self, split: &TargetSplit) -> AtpgOutcome {
        let _phase = pdf_telemetry::Span::enter("enrich");
        let sets: Vec<&FaultList> = split.sets().iter().collect();
        Session::new(self.circuit, self.config.clone(), &sets)
            .run(None)
            .expect("a fresh run cannot fail on resume validation")
    }

    /// Runs enrichment over the split's sets, continuing from
    /// `checkpoint` — the crash-recovery entry point. For a fixed seed the
    /// resumed run produces the identical test set an uninterrupted run
    /// would have.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] when the checkpoint does not belong to this
    /// circuit/configuration/target-split combination.
    pub fn run_resumed(
        &self,
        split: &TargetSplit,
        checkpoint: &Checkpoint,
    ) -> Result<AtpgOutcome, ResumeError> {
        let _phase = pdf_telemetry::Span::enter("enrich");
        let sets: Vec<&FaultList> = split.sets().iter().collect();
        Session::new(self.circuit, self.config.clone(), &sets).run(Some(checkpoint))
    }
}

/// Internal engine shared by both public procedures.
struct Session<'c, 'f> {
    circuit: &'c Circuit,
    config: AtpgConfig,
    justifier: Justifier<'c>,
    /// All faults, set 0 first.
    faults: Vec<&'f FaultEntry>,
    /// First index of each set in `faults` (plus a final sentinel).
    set_starts: Vec<usize>,
    detected: Vec<bool>,
    aborted: Vec<bool>,
    quarantined: Vec<bool>,
    /// Primary (and arbit/length secondary) order over set-0 indices.
    primary_order: Vec<usize>,
    stats: AtpgStats,
    /// Tests pushed so far (checkpoint interval anchor).
    completed: usize,
    /// State at the last primary-processed boundary. Budget exhaustion
    /// mid-test rolls back to it and checkpoints always describe it, so a
    /// checkpoint never captures a half-built test or a mid-justification
    /// RNG position.
    boundary_rng: u64,
    boundary_detected: Vec<bool>,
    boundary_aborted: Vec<bool>,
    boundary_quarantined: Vec<bool>,
    boundary_stats: AtpgStats,
    /// A checkpoint write already failed and was reported (warn once).
    checkpoint_warned: bool,
}

impl<'c, 'f> Session<'c, 'f> {
    fn new(circuit: &'c Circuit, config: AtpgConfig, sets: &[&'f FaultList]) -> Session<'c, 'f> {
        let mut faults = Vec::new();
        let mut set_starts = vec![0usize];
        for set in sets {
            faults.extend(set.iter());
            set_starts.push(faults.len());
        }
        // Decorrelate the shuffle stream from the justifier's stream.
        let mut rng = SplitMix64::new(config.seed ^ 0x0A1B_2C3D_4E5F_6071);
        let mut primary_order: Vec<usize> = (0..set_starts[1]).collect();
        if matches!(config.compaction, Compaction::Arbitrary) {
            // Fisher-Yates with the deterministic generator.
            for i in (1..primary_order.len()).rev() {
                let j = rng.next_below(i + 1);
                primary_order.swap(i, j);
            }
        }
        let justifier = Justifier::new(circuit, config.seed)
            .with_attempts(config.justify_attempts)
            .with_options(config.sim)
            .with_cone_cache(config.cone_cache)
            .with_budget(config.budget.clone());
        Session {
            circuit,
            config,
            justifier,
            faults,
            set_starts,
            detected: vec![false; 0],
            aborted: vec![false; 0],
            quarantined: vec![false; 0],
            primary_order,
            stats: AtpgStats::default(),
            completed: 0,
            boundary_rng: 0,
            boundary_detected: vec![false; 0],
            boundary_aborted: vec![false; 0],
            boundary_quarantined: vec![false; 0],
            boundary_stats: AtpgStats::default(),
            checkpoint_warned: false,
        }
    }

    fn run(mut self, resume: Option<&Checkpoint>) -> Result<AtpgOutcome, ResumeError> {
        let _phase = pdf_telemetry::Span::enter("generate");
        let n = self.faults.len();
        self.detected = vec![false; n];
        self.aborted = vec![false; n];
        self.quarantined = vec![false; n];
        let mut test_set = match resume {
            Some(checkpoint) => self.apply_resume(checkpoint)?,
            None => TestSet::new(),
        };
        self.snapshot_boundary();

        loop {
            // The fault-loop granularity poll: budget exhaustion between
            // tests stops targeting new faults, boundary state intact.
            if self.config.budget.exhausted() {
                break;
            }
            let Some(primary) = self.next_primary() else {
                break;
            };
            pdf_telemetry::count(pdf_telemetry::counters::FAULTS_TARGETED, 1);
            let req = self.faults[primary].assignments.clone();
            let Some(justified) = self.justify_guarded(primary, &req, None) else {
                if self.quarantined[primary] {
                    self.snapshot_boundary();
                    continue;
                }
                if self.config.budget.already_exhausted() {
                    // A budget-truncated search says nothing about the
                    // fault: leave it unaborted for the resumed run.
                    break;
                }
                self.aborted[primary] = true;
                self.stats.aborted_primaries += 1;
                self.snapshot_boundary();
                continue;
            };
            let mut union = req;
            // Under the freeze-values mode, input values committed so far
            // are pinned for every later secondary (Goel-Rosales style).
            let mut frozen: Vec<(LineId, Value, Value)> =
                if matches!(self.config.secondary_mode, SecondaryMode::FreezeValues) {
                    justified.assignment.clone()
                } else {
                    Vec::new()
                };
            let mut current = justified;

            if !matches!(self.config.compaction, Compaction::Uncompacted) {
                self.extend_with_secondaries(primary, &mut union, &mut current, &mut frozen);
            }
            if self.config.budget.already_exhausted() {
                // The budget fired mid-construction: the truncated
                // secondary phase would differ from the uninterrupted
                // run's, so the in-flight test is discarded outright and
                // the resumed run rebuilds it from the boundary RNG.
                self.discard_in_flight();
                break;
            }

            // Drop every fault the finished test detects (the paper's
            // per-test fault simulation), fanned out over fault chunks.
            self.sweep(&current.waves);
            debug_assert!(self.detected[primary], "primary must be detected");
            test_set.push(current.test);
            self.completed += 1;
            self.snapshot_boundary();
            let every = self.config.checkpoint.as_ref().map(|p| p.every);
            if every.is_some_and(|every| self.completed.is_multiple_of(every)) {
                self.write_checkpoint(&test_set, false);
            }
        }

        let budget_exhausted = self.config.budget.already_exhausted();
        if self.config.checkpoint.is_some() {
            self.write_checkpoint(&test_set, !budget_exhausted);
        }
        self.stats.justify = self.justifier.stats();
        let set_sizes = self.set_starts.windows(2).map(|w| w[1] - w[0]).collect();
        Ok(AtpgOutcome {
            test_set,
            detected: self.detected,
            aborted: self.aborted,
            quarantined: self.quarantined,
            set_sizes,
            stats: self.stats,
            budget_exhausted,
        })
    }

    /// Validates `checkpoint` against this run and installs its state:
    /// flags, counters, completed-test count and the boundary RNG. Returns
    /// the carried test set.
    fn apply_resume(&mut self, checkpoint: &Checkpoint) -> Result<TestSet, ResumeError> {
        let mismatch = |field: &'static str, expected: String, found: String| {
            Err(ResumeError::Mismatch {
                field,
                expected,
                found,
            })
        };
        if checkpoint.version != CHECKPOINT_VERSION {
            return mismatch(
                "version",
                checkpoint.version.to_string(),
                CHECKPOINT_VERSION.to_string(),
            );
        }
        if checkpoint.circuit != self.circuit.name() {
            return mismatch(
                "circuit",
                checkpoint.circuit.clone(),
                self.circuit.name().to_owned(),
            );
        }
        if checkpoint.seed != self.config.seed {
            return mismatch(
                "seed",
                format!("{:#018x}", checkpoint.seed),
                format!("{:#018x}", self.config.seed),
            );
        }
        let fingerprint = config_fingerprint(&self.config);
        if checkpoint.fingerprint != fingerprint {
            return mismatch("fingerprint", checkpoint.fingerprint.clone(), fingerprint);
        }
        let set_sizes: Vec<usize> = self.set_starts.windows(2).map(|w| w[1] - w[0]).collect();
        if checkpoint.set_sizes != set_sizes {
            return mismatch(
                "set_sizes",
                format!("{:?}", checkpoint.set_sizes),
                format!("{set_sizes:?}"),
            );
        }
        let n = self.faults.len();
        for (field, flags) in [
            ("detected", &checkpoint.detected),
            ("aborted", &checkpoint.aborted),
            ("quarantined", &checkpoint.quarantined),
        ] {
            if flags.len() != n {
                return mismatch(
                    field,
                    format!("{} flags", flags.len()),
                    format!("{n} faults"),
                );
            }
        }
        let test_set =
            TestSet::from_text(&checkpoint.tests.join("\n")).map_err(ResumeError::BadTests)?;
        let width = self.circuit.inputs().len();
        if let Some(t) = test_set.tests().iter().find(|t| t.len() != width) {
            return mismatch(
                "test width",
                t.len().to_string(),
                format!("{width} circuit inputs"),
            );
        }
        if test_set.len() != checkpoint.completed {
            return mismatch(
                "completed",
                checkpoint.completed.to_string(),
                format!("{} carried tests", test_set.len()),
            );
        }
        self.detected.copy_from_slice(&checkpoint.detected);
        self.aborted.copy_from_slice(&checkpoint.aborted);
        self.quarantined.copy_from_slice(&checkpoint.quarantined);
        self.completed = checkpoint.completed;
        self.justifier.set_rng_state(checkpoint.rng_state);
        self.stats.aborted_primaries = checkpoint.counter("aborted_primaries") as usize;
        self.stats.secondary_accepts = checkpoint.counter("secondary_accepts") as usize;
        self.stats.free_accepts = checkpoint.counter("free_accepts") as usize;
        self.stats.secondary_rejects = checkpoint.counter("secondary_rejects") as usize;
        self.stats.conflict_rejects = checkpoint.counter("conflict_rejects") as usize;
        self.stats.faults_quarantined = checkpoint.counter("faults_quarantined") as usize;
        self.stats.checkpoints_written = checkpoint.counter("checkpoints_written") as usize;
        Ok(test_set)
    }

    /// Records the current state as the primary-processed boundary.
    fn snapshot_boundary(&mut self) {
        self.boundary_rng = self.justifier.rng_state();
        self.boundary_detected.clone_from(&self.detected);
        self.boundary_aborted.clone_from(&self.aborted);
        self.boundary_quarantined.clone_from(&self.quarantined);
        self.boundary_stats = self.stats;
    }

    /// Rolls flags and counters back to the last boundary, abandoning a
    /// test whose construction the budget truncated.
    fn discard_in_flight(&mut self) {
        self.detected.clone_from(&self.boundary_detected);
        self.aborted.clone_from(&self.boundary_aborted);
        self.quarantined.clone_from(&self.boundary_quarantined);
        self.stats = self.boundary_stats;
    }

    /// Writes a boundary checkpoint through the configured policy. A
    /// refused write is reported once and the run continues — losing
    /// crash-recoverability must not fail the run itself.
    fn write_checkpoint(&mut self, test_set: &TestSet, complete: bool) {
        let Some(policy) = &self.config.checkpoint else {
            return;
        };
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            circuit: self.circuit.name().to_owned(),
            seed: self.config.seed,
            fingerprint: config_fingerprint(&self.config),
            set_sizes: self.set_starts.windows(2).map(|w| w[1] - w[0]).collect(),
            completed: self.completed,
            rng_state: self.boundary_rng,
            detected: self.boundary_detected.clone(),
            aborted: self.boundary_aborted.clone(),
            quarantined: self.boundary_quarantined.clone(),
            tests: test_set
                .tests()
                .iter()
                .map(crate::testset::test_line)
                .collect(),
            counters: vec![
                (
                    "aborted_primaries".to_owned(),
                    self.boundary_stats.aborted_primaries as u64,
                ),
                (
                    "secondary_accepts".to_owned(),
                    self.boundary_stats.secondary_accepts as u64,
                ),
                (
                    "free_accepts".to_owned(),
                    self.boundary_stats.free_accepts as u64,
                ),
                (
                    "secondary_rejects".to_owned(),
                    self.boundary_stats.secondary_rejects as u64,
                ),
                (
                    "conflict_rejects".to_owned(),
                    self.boundary_stats.conflict_rejects as u64,
                ),
                (
                    "faults_quarantined".to_owned(),
                    self.boundary_stats.faults_quarantined as u64,
                ),
                (
                    "checkpoints_written".to_owned(),
                    (self.stats.checkpoints_written + 1) as u64,
                ),
            ],
            complete,
        };
        match checkpoint.save(&policy.path) {
            Ok(()) => {
                self.stats.checkpoints_written += 1;
                self.boundary_stats.checkpoints_written = self.stats.checkpoints_written;
            }
            Err(e) => {
                if !self.checkpoint_warned {
                    eprintln!("warning: checkpoint write failed, continuing without: {e}");
                    self.checkpoint_warned = true;
                }
            }
        }
    }

    /// Marks fault `i` quarantined: it panicked mid-processing and is
    /// skipped (never targeted, never offered as a secondary, never swept)
    /// for the rest of the run.
    fn quarantine_fault(&mut self, i: usize, context: &str) {
        if self.quarantined[i] {
            return;
        }
        self.quarantined[i] = true;
        self.stats.faults_quarantined += 1;
        pdf_telemetry::count(pdf_telemetry::counters::FAULTS_QUARANTINED, 1);
        eprintln!(
            "warning: quarantined fault {} after a panic during {context}",
            self.faults[i].fault
        );
    }

    /// A justification call attributable to fault `i`: under quarantine,
    /// a panic inside the justifier quarantines the fault and reads as a
    /// failed call.
    fn justify_guarded(
        &mut self,
        i: usize,
        req: &Assignments,
        frozen: Option<&[(LineId, Value, Value)]>,
    ) -> Option<Justified> {
        let run = |justifier: &mut Justifier<'c>| match frozen {
            None => justifier.justify(req),
            Some(pins) => justifier.justify_seeded(req, pins),
        };
        if !self.config.quarantine {
            return run(&mut self.justifier);
        }
        let justifier = &mut self.justifier;
        match catch_unwind(AssertUnwindSafe(|| run(justifier))) {
            Ok(result) => result,
            Err(payload) => {
                let message = pdf_sim::panic_message(payload.as_ref()).to_owned();
                self.quarantine_fault(i, &format!("justification ({message})"));
                None
            }
        }
    }

    /// The per-test fault simulation sweep, fault panics quarantined.
    fn sweep(&mut self, waves: &[pdf_logic::Triple]) {
        if !self.config.quarantine {
            for i in pdf_sim::newly_satisfied(waves, &self.faults, &self.detected) {
                self.detected[i] = true;
            }
            return;
        }
        let skip: Vec<bool> = self
            .detected
            .iter()
            .zip(&self.quarantined)
            .map(|(&d, &q)| d || q)
            .collect();
        let swept = pdf_sim::newly_satisfied_guarded(waves, &self.faults, &skip);
        for i in swept.satisfied {
            self.detected[i] = true;
        }
        for i in swept.panicked {
            self.quarantine_fault(i, "fault simulation");
        }
    }

    /// The next set-0 fault to build a test around: undetected, not yet
    /// tried as a primary, not quarantined; longest-first except under the
    /// arbitrary order.
    fn next_primary(&self) -> Option<usize> {
        self.primary_order
            .iter()
            .copied()
            .find(|&i| !self.detected[i] && !self.aborted[i] && !self.quarantined[i])
    }

    /// Folds secondary targets into the current test, set by set.
    fn extend_with_secondaries(
        &mut self,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let set_count = self.set_starts.len() - 1;
        for set in 0..set_count {
            // Per the paper, faults of a later set are considered only
            // after all faults of the earlier sets.
            match self.config.compaction {
                Compaction::Uncompacted => unreachable!("checked by caller"),
                Compaction::Arbitrary | Compaction::LengthBased => {
                    self.ordered_pass(set, primary, union, current, frozen);
                }
                Compaction::ValueBased => {
                    self.value_based_pass(set, primary, union, current, frozen);
                }
            }
        }
    }

    /// Secondary candidates in a fixed order (fault-list order for the
    /// length-based heuristic, the shuffled order for the arbitrary one).
    fn ordered_pass(
        &mut self,
        set: usize,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let (lo, hi) = (self.set_starts[set], self.set_starts[set + 1]);
        let order: Vec<usize> = if set == 0 {
            self.primary_order.clone()
        } else {
            (lo..hi).collect()
        };
        for i in order {
            if self.config.budget.already_exhausted() {
                return; // the truncated test is discarded by the caller
            }
            if self.eligible_secondary(i, primary) {
                self.try_candidate(i, union, current, frozen);
            }
        }
    }

    /// The value-based heuristic: repeatedly take the compatible candidate
    /// with the fewest new value components `n_Δ`; Δ-sets stay valid
    /// between accepts because the union only changes on accept.
    fn value_based_pass(
        &mut self,
        set: usize,
        primary: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) {
        let (lo, hi) = (self.set_starts[set], self.set_starts[set + 1]);
        let mut considered = vec![false; hi - lo];
        loop {
            if self.config.budget.already_exhausted() {
                return; // the truncated test is discarded by the caller
            }
            // Rank all unconsidered candidates by n_Δ against the current
            // union; conflicting candidates are rejected outright.
            let mut ranked: Vec<(usize, usize)> = Vec::new();
            for i in lo..hi {
                if considered[i - lo] || !self.eligible_secondary(i, primary) {
                    continue;
                }
                match union.delta_count(&self.faults[i].assignments) {
                    Some(delta) => ranked.push((delta, i)),
                    None => {
                        considered[i - lo] = true;
                        self.stats.conflict_rejects += 1;
                    }
                }
            }
            ranked.sort_unstable();
            let mut accepted = false;
            for (_, i) in ranked {
                considered[i - lo] = true;
                if self.try_candidate(i, union, current, frozen) {
                    accepted = true;
                    break; // union changed: recompute the Δ ranking
                }
            }
            if !accepted {
                break;
            }
        }
    }

    fn eligible_secondary(&self, i: usize, primary: usize) -> bool {
        i != primary && !self.detected[i] && !self.aborted[i] && !self.quarantined[i]
    }

    /// Attempts to add fault `i` to the current test. Returns `true` when
    /// the union of requirements changed (the test was regenerated).
    fn try_candidate(
        &mut self,
        i: usize,
        union: &mut Assignments,
        current: &mut Justified,
        frozen: &mut Vec<(LineId, Value, Value)>,
    ) -> bool {
        let entry = self.faults[i];
        let a = &entry.assignments;
        // Free acceptance: the test built so far already detects it. Its
        // requirements still join the union so that later regenerations
        // keep detecting it; if that grows the union, the caller must
        // recompute its Δ ranking (the paper recomputes Δ per selection).
        let satisfied = if self.config.quarantine {
            let waves = &current.waves;
            match catch_unwind(AssertUnwindSafe(|| a.satisfied_by(waves))) {
                Ok(satisfied) => satisfied,
                Err(payload) => {
                    let message = pdf_sim::panic_message(payload.as_ref()).to_owned();
                    self.quarantine_fault(i, &format!("the free-acceptance check ({message})"));
                    return false;
                }
            }
        } else {
            a.satisfied_by(&current.waves)
        };
        if satisfied {
            let mut grew = false;
            if let Some(merged) = union.merged(a) {
                grew = merged != *union;
                *union = merged;
            }
            self.detected[i] = true;
            self.stats.free_accepts += 1;
            pdf_telemetry::count(pdf_telemetry::counters::SECONDARY_DETECTED, 1);
            return grew;
        }
        let Some(merged) = union.merged(a) else {
            self.stats.conflict_rejects += 1;
            return false;
        };
        // Implication pre-filter: a contradiction proves no test exists
        // for the merged requirements, so the (much costlier) randomized
        // justification is skipped. Sound — it only rejects candidates
        // justification could never accept.
        let conflicting = if self.config.quarantine {
            let circuit = self.circuit;
            let merged_ref = &merged;
            let learned = self.config.learned.as_deref();
            match catch_unwind(AssertUnwindSafe(|| {
                pdf_faults::Implicator::from_assignments_with(circuit, merged_ref, learned).is_err()
            })) {
                Ok(conflicting) => conflicting,
                Err(payload) => {
                    let message = pdf_sim::panic_message(payload.as_ref()).to_owned();
                    self.quarantine_fault(i, &format!("the implication pre-filter ({message})"));
                    return false;
                }
            }
        } else {
            pdf_faults::Implicator::from_assignments_with(
                self.circuit,
                &merged,
                self.config.learned.as_deref(),
            )
            .is_err()
        };
        if conflicting {
            self.stats.conflict_rejects += 1;
            return false;
        }
        let result = match self.config.secondary_mode {
            SecondaryMode::Regenerate => self.justify_guarded(i, &merged, None),
            SecondaryMode::FreezeValues => self.justify_guarded(i, &merged, Some(frozen)),
        };
        match result {
            Some(justified) => {
                if matches!(self.config.secondary_mode, SecondaryMode::FreezeValues) {
                    // Pin the newly committed input values for the rest of
                    // this test's construction.
                    for &(line, v1, v2) in &justified.assignment {
                        if !frozen.iter().any(|&(l, _, _)| l == line) {
                            frozen.push((line, v1, v2));
                        }
                    }
                }
                *union = merged;
                *current = justified;
                self.detected[i] = true;
                self.stats.secondary_accepts += 1;
                pdf_telemetry::count(pdf_telemetry::counters::SECONDARY_DETECTED, 1);
                true
            }
            None => {
                // A quarantine mid-call is not a justification verdict.
                if !self.quarantined[i] {
                    self.stats.secondary_rejects += 1;
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;
    use pdf_paths::PathEnumerator;
    use pdf_sim::SimBackend;

    fn s27_faults() -> (Circuit, FaultList) {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        (c, faults)
    }

    fn config(compaction: Compaction) -> AtpgConfig {
        AtpgConfig {
            compaction,
            // Run the whole generator suite under the option block of the
            // CI leg (`PDF_SIM_BACKEND`/`PDF_SIM_WIDTH`/`PDF_SIM_EVENTS`),
            // not just the default.
            sim: SimOptions::from_env().expect("PDF_SIM_* must parse"),
            ..AtpgConfig::default()
        }
    }

    #[test]
    fn all_heuristics_complete_and_agree_on_coverage_frontier() {
        let (c, faults) = s27_faults();
        let mut counts = Vec::new();
        for h in Compaction::ALL {
            let outcome = BasicAtpg::new(&c).with_config(config(h)).run(&faults);
            // Every reported detection must be real: re-simulate.
            let cov = outcome.tests().coverage(&c, &faults);
            assert_eq!(
                cov.detected(),
                outcome.detected(),
                "{}: fault simulation must agree with bookkeeping",
                h.label()
            );
            counts.push((h, outcome.tests().len(), outcome.detected_total()));
        }
        // Compaction reduces the number of tests vs uncompacted.
        let uncomp_tests = counts[0].1;
        for &(h, tests, _) in &counts[1..] {
            assert!(
                tests <= uncomp_tests,
                "{}: {tests} tests vs uncomp {uncomp_tests}",
                h.label()
            );
        }
    }

    #[test]
    fn uncompacted_builds_one_test_per_undetected_primary() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::Uncompacted))
            .run(&faults);
        // Each test corresponds to exactly one successful primary attempt.
        assert_eq!(
            outcome.tests().len() + outcome.stats().aborted_primaries,
            outcome.stats().justify.calls
        );
        assert_eq!(outcome.stats().secondary_accepts, 0);
        assert_eq!(outcome.stats().secondary_rejects, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (c, faults) = s27_faults();
        let a = BasicAtpg::new(&c).with_seed(7).run(&faults);
        let b = BasicAtpg::new(&c).with_seed(7).run(&faults);
        assert_eq!(a.tests().len(), b.tests().len());
        assert_eq!(a.detected(), b.detected());
        for (ta, tb) in a.tests().tests().iter().zip(b.tests().tests()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn enrichment_detects_p1_without_more_tests_than_basic_scale() {
        let (c, faults) = s27_faults();
        let split = TargetSplit::by_cumulative_length(&faults, 10);
        assert!(!split.p1().is_empty());

        let basic = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(split.p0());
        let enriched = EnrichmentAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&split);

        // Test counts are close (identical targets drive both).
        let delta = enriched.tests().len().abs_diff(basic.tests().len());
        assert!(
            delta <= 2,
            "basic {} vs enriched {}",
            basic.tests().len(),
            enriched.tests().len()
        );

        // Enrichment must detect at least one P1 fault on this circuit.
        let p1_detected = enriched.detected_total() - enriched.detected_in_set(0);
        assert!(p1_detected > 0);
    }

    #[test]
    fn enrichment_p0_detection_not_sacrificed() {
        let (c, faults) = s27_faults();
        let split = TargetSplit::by_cumulative_length(&faults, 10);
        let basic = BasicAtpg::new(&c).run(split.p0());
        let enriched = EnrichmentAtpg::new(&c).run(&split);
        let basic_p0 = basic.detected_in_set(0);
        let enriched_p0 = enriched.detected_in_set(0);
        // Small random variation allowed (the paper observes the same).
        assert!(
            enriched_p0 + 2 >= basic_p0,
            "enriched {enriched_p0} vs basic {basic_p0}"
        );
    }

    #[test]
    fn enrichment_coverage_is_backend_independent() {
        // Both completion engines draw the same random fill words per
        // block, so for equal seeds the whole multi-set run — tests,
        // per-set detections, everything — is backend-independent. The
        // acceptance bar is per-set coverage; test identity is stronger
        // and currently holds.
        let synth = pdf_netlist::stand_in_profile("b09")
            .expect("known stand-in")
            .generate()
            .to_circuit()
            .expect("combinational");
        for c in [s27(), synth] {
            let paths = PathEnumerator::new(&c).with_cap(400).enumerate();
            let (faults, _) = FaultList::build(&c, &paths.store);
            let split = TargetSplit::by_cumulative_length(&faults, faults.len() / 4);
            let run = |opts: SimOptions| {
                EnrichmentAtpg::new(&c)
                    .with_config(AtpgConfig {
                        sim: opts,
                        justify_attempts: 2,
                        ..AtpgConfig::default()
                    })
                    .run(&split)
            };
            let scalar = run(SimBackend::Scalar.into());
            let packed = run(SimBackend::Packed.into());
            for set in 0..2 {
                assert_eq!(
                    scalar.detected_in_set(set),
                    packed.detected_in_set(set),
                    "set {set}"
                );
            }
            assert_eq!(scalar.detected(), packed.detected());
            assert_eq!(scalar.tests().tests(), packed.tests().tests());
        }
    }

    #[test]
    fn aborted_primaries_are_not_retried() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c).run(&faults);
        // Aborted flags only on undetected faults.
        for (i, &a) in outcome.aborted().iter().enumerate() {
            if a {
                assert!(!outcome.detected()[i]);
            }
        }
        assert_eq!(
            outcome.stats().aborted_primaries,
            outcome.aborted().iter().filter(|&&a| a).count()
        );
    }

    #[test]
    fn freeze_values_mode_runs_and_detects() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        cfg.secondary_mode = SecondaryMode::FreezeValues;
        let frozen = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        // Bookkeeping still matches post-hoc simulation.
        let cov = frozen.tests().coverage(&c, &faults);
        assert_eq!(cov.detected(), frozen.detected());
        // The paper's argument for regeneration: it detects at least as
        // many secondary targets per test (s27 is tiny, so equality can
        // occur; the margin claim is validated at benchmark scale in the
        // `secondary_mode` experiment).
        let regen = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        assert!(regen.detected_total() + 3 >= frozen.detected_total());
    }

    #[test]
    fn freeze_values_mode_is_deterministic() {
        let (c, faults) = s27_faults();
        let mut cfg = config(Compaction::ValueBased);
        cfg.secondary_mode = SecondaryMode::FreezeValues;
        let a = BasicAtpg::new(&c).with_config(cfg.clone()).run(&faults);
        let b = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        assert_eq!(a.detected(), b.detected());
        assert_eq!(a.tests().len(), b.tests().len());
    }

    #[test]
    fn free_accepts_happen() {
        let (c, faults) = s27_faults();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        // On s27, tests routinely detect several faults at once.
        assert!(outcome.stats().free_accepts + outcome.stats().secondary_accepts > 0);
    }

    /// Replaces the entry at `slot` with one whose assignments constrain
    /// a line the circuit does not have: simulation lookups, cone
    /// construction and implication all panic on it.
    fn poison(faults: &FaultList, slot: usize) -> FaultList {
        let mut entries: Vec<FaultEntry> = faults.iter().cloned().collect();
        let mut bad = pdf_faults::Assignments::new();
        bad.require(LineId::new(9_999), pdf_logic::Triple::RISING)
            .unwrap();
        entries[slot].assignments = bad;
        entries.into_iter().collect()
    }

    #[test]
    fn poisoned_secondary_is_quarantined_and_the_run_continues() {
        let (c, faults) = s27_faults();
        let slot = faults.len() / 2;
        let poisoned = poison(&faults, slot);
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&poisoned);
        assert_eq!(outcome.stats().faults_quarantined, 1);
        assert!(outcome.quarantined()[slot]);
        assert_eq!(outcome.quarantined().iter().filter(|&&q| q).count(), 1);
        assert!(!outcome.detected()[slot]);
        assert!(!outcome.aborted()[slot], "quarantine is not an abort");
        // The rest of the population is unaffected.
        assert!(!outcome.tests().is_empty());
        assert!(outcome.detected_total() > 0);
    }

    #[test]
    fn poisoned_primary_is_quarantined_at_justification() {
        let (c, faults) = s27_faults();
        // Slot 0 is the first primary under the length-based order.
        let poisoned = poison(&faults, 0);
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&poisoned);
        assert!(outcome.quarantined()[0]);
        assert_eq!(outcome.stats().faults_quarantined, 1);
        assert!(!outcome.tests().is_empty());
    }

    #[test]
    fn poisoned_fault_is_quarantined_by_the_sweep_without_compaction() {
        let (c, faults) = s27_faults();
        let slot = faults.len() / 2;
        let poisoned = poison(&faults, slot);
        // Uncompacted: no secondary pass, so the guarded per-test fault
        // simulation sweep is what trips over the poison.
        let outcome = BasicAtpg::new(&c)
            .with_config(config(Compaction::Uncompacted))
            .run(&poisoned);
        assert!(outcome.quarantined()[slot]);
        assert_eq!(outcome.stats().faults_quarantined, 1);
    }

    #[test]
    fn budget_exhaustion_finalizes_a_partial_prefix() {
        let (c, faults) = s27_faults();
        let full = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        assert!(!full.budget_exhausted());
        let mut cfg = config(Compaction::ValueBased);
        cfg.budget =
            RunBudget::unlimited().and_cancel(pdf_runctl::CancelToken::cancel_after_polls(5));
        let partial = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        assert!(partial.budget_exhausted());
        assert!(partial.tests().len() < full.tests().len());
        // Every finalized test is real and a prefix of the full run's.
        let cov = partial.tests().coverage(&c, &faults);
        assert_eq!(cov.detected(), partial.detected());
        for (a, b) in partial.tests().tests().iter().zip(full.tests().tests()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn interrupted_resumed_run_reproduces_the_uninterrupted_set() {
        let (c, faults) = s27_faults();
        let full = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .run(&faults);
        let path =
            std::env::temp_dir().join(format!("pdf_generator_resume_{}.json", std::process::id()));
        for polls in [1u64, 3, 17, 61, 301] {
            let mut cfg = config(Compaction::ValueBased);
            cfg.budget = RunBudget::unlimited()
                .and_cancel(pdf_runctl::CancelToken::cancel_after_polls(polls));
            cfg.checkpoint = Some(pdf_runctl::CheckpointPolicy::new(&path, 1));
            let partial = BasicAtpg::new(&c).with_config(cfg).run(&faults);
            let checkpoint = pdf_runctl::Checkpoint::load(&path).unwrap();
            assert_eq!(checkpoint.complete, !partial.budget_exhausted());
            let resumed = BasicAtpg::new(&c)
                .with_config(config(Compaction::ValueBased))
                .run_resumed(&faults, &checkpoint)
                .unwrap();
            assert_eq!(
                resumed.tests().to_text(),
                full.tests().to_text(),
                "polls={polls}"
            );
            assert_eq!(resumed.detected(), full.detected(), "polls={polls}");
            assert_eq!(resumed.aborted(), full.aborted(), "polls={polls}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_foreign_checkpoint() {
        let (c, faults) = s27_faults();
        let path =
            std::env::temp_dir().join(format!("pdf_generator_reject_{}.json", std::process::id()));
        let mut cfg = config(Compaction::ValueBased);
        cfg.checkpoint = Some(pdf_runctl::CheckpointPolicy::new(&path, 4));
        let _ = BasicAtpg::new(&c).with_config(cfg).run(&faults);
        let checkpoint = pdf_runctl::Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let err = BasicAtpg::new(&c)
            .with_config(config(Compaction::ValueBased))
            .with_seed(999)
            .run_resumed(&faults, &checkpoint)
            .unwrap_err();
        assert!(matches!(err, ResumeError::Mismatch { field: "seed", .. }));

        let err = BasicAtpg::new(&c)
            .with_config(config(Compaction::Arbitrary))
            .run_resumed(&faults, &checkpoint)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ResumeError::Mismatch {
                    field: "fingerprint",
                    ..
                }
            ),
            "{err}"
        );
    }
}
