//! Target fault set selection: splitting `P` into `P_0` (critical) and
//! `P_1` (next-to-longest), with the k-set generalization the paper
//! mentions.

use pdf_faults::{FaultEntry, FaultList};
use pdf_paths::LengthHistogram;

/// The partition of the fault population into target sets.
///
/// Set 0 (`P_0`) holds the faults on the longest paths — the faults the
/// test set *must* detect; the remaining sets hold progressively less
/// critical faults that are detected opportunistically. The paper uses two
/// sets; [`TargetSplit::by_thresholds`] builds any number.
///
/// # Example
///
/// ```
/// use pdf_atpg::TargetSplit;
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
/// // Tiny circuit: ask for at least 10 faults in P0.
/// let split = TargetSplit::by_cumulative_length(&faults, 10);
/// assert!(split.p0().len() >= 10);
/// assert_eq!(split.p0().len() + split.p1().len(), faults.len());
/// ```
#[derive(Clone, Debug)]
pub struct TargetSplit {
    sets: Vec<FaultList>,
    cutoffs: Vec<u32>,
    i0: usize,
}

impl TargetSplit {
    /// The paper's rule: `P_0` takes all faults on paths of length
    /// `L_{i0}` or more, where `i0` is the smallest index with
    /// `N_p(L_{i0}) ≥ n_p0` (the paper uses `N_P0 = 1000`); `P_1` takes
    /// the rest. If the whole population is smaller than `n_p0`,
    /// everything lands in `P_0`.
    #[must_use]
    pub fn by_cumulative_length(faults: &FaultList, n_p0: usize) -> TargetSplit {
        let histogram = LengthHistogram::from_lengths(faults.delays());
        let (i0, cutoff) = match histogram.cutoff(n_p0) {
            Some(i0) => (
                i0,
                histogram.length_at(i0).expect("cutoff returns valid index"),
            ),
            None => (
                histogram.len().saturating_sub(1),
                histogram.classes().last().map_or(0, |c| c.length),
            ),
        };
        let mut split = TargetSplit::by_thresholds(faults, &[cutoff]);
        split.i0 = i0;
        split
    }

    /// The k-set generalization of the paper's cumulative rule: set 0 is
    /// the exact `P_0` of [`TargetSplit::by_cumulative_length`], and the
    /// remainder is subdivided by re-applying the same rule (each next
    /// set takes the faults on the longest remaining paths until another
    /// `n_p0` is accumulated) until `k` sets exist or the population runs
    /// out. The last set absorbs whatever is left, so the union of the
    /// sets is always the whole population and `k = 2` reproduces the
    /// paper's two-set scheme exactly.
    ///
    /// Degenerate populations may yield fewer than `k` non-empty sets;
    /// the split still reports `k` sets (trailing ones empty) so callers
    /// can index by set number uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (one set is not a split — run the basic
    /// procedure on the whole population instead).
    #[must_use]
    pub fn by_nested_cumulative(faults: &FaultList, n_p0: usize, k: usize) -> TargetSplit {
        assert!(k >= 2, "a nested split needs at least two sets");
        let first = TargetSplit::by_cumulative_length(faults, n_p0);
        let i0 = first.i0;
        let mut cutoffs = vec![first.cutoffs[0]];
        let mut remaining: Vec<u32> = faults.delays().filter(|&d| d < first.cutoffs[0]).collect();
        while cutoffs.len() < k - 1 && !remaining.is_empty() {
            let histogram = LengthHistogram::from_lengths(remaining.iter().copied());
            let cutoff = match histogram.cutoff(n_p0) {
                Some(i) => histogram.length_at(i).expect("cutoff returns valid index"),
                None => histogram.classes().last().map_or(0, |c| c.length),
            };
            // The rule can swallow the whole remainder (cutoff at the
            // shortest length); the final catch-all set covers that case.
            if cutoff >= *cutoffs.last().expect("at least one cutoff") {
                break;
            }
            remaining.retain(|&d| d < cutoff);
            if remaining.is_empty() && cutoffs.len() + 2 == k {
                // The cutoff drains the remainder exactly: keep it, the
                // final set is legitimately empty.
                cutoffs.push(cutoff);
                break;
            }
            cutoffs.push(cutoff);
        }
        let mut split = TargetSplit::by_thresholds(faults, &cutoffs);
        split.i0 = i0;
        // Pad to k sets so set numbers are stable across populations.
        while split.sets.len() < k {
            split.sets.push(FaultList::from_iter(Vec::new()));
        }
        split
    }

    /// Generalized k-set partition: `thresholds` lists decreasing length
    /// cutoffs; set `j` receives the faults with
    /// `thresholds[j] <= delay` (and `delay < thresholds[j-1]` for
    /// `j > 0`); one final set receives everything shorter. With one
    /// threshold this is the paper's two-set scheme.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty or not strictly decreasing.
    #[must_use]
    pub fn by_thresholds(faults: &FaultList, thresholds: &[u32]) -> TargetSplit {
        assert!(!thresholds.is_empty(), "at least one threshold required");
        assert!(
            thresholds.windows(2).all(|w| w[0] > w[1]),
            "thresholds must be strictly decreasing"
        );
        let mut sets: Vec<Vec<FaultEntry>> = vec![Vec::new(); thresholds.len() + 1];
        for entry in faults.iter() {
            let set = thresholds
                .iter()
                .position(|&t| entry.delay >= t)
                .unwrap_or(thresholds.len());
            sets[set].push(entry.clone());
        }
        TargetSplit {
            sets: sets.into_iter().map(FaultList::from_iter).collect(),
            cutoffs: thresholds.to_vec(),
            i0: 0,
        }
    }

    /// The primary target set `P_0`.
    #[must_use]
    pub fn p0(&self) -> &FaultList {
        &self.sets[0]
    }

    /// The second target set `P_1` (empty list if the split is degenerate).
    #[must_use]
    pub fn p1(&self) -> &FaultList {
        &self.sets[1]
    }

    /// All sets, most critical first.
    #[must_use]
    pub fn sets(&self) -> &[FaultList] {
        &self.sets
    }

    /// The index `i0` of the cutoff length class (as reported in the
    /// paper's tables). Only meaningful for splits built by
    /// [`TargetSplit::by_cumulative_length`].
    #[must_use]
    pub fn i0(&self) -> usize {
        self.i0
    }

    /// The length cutoffs used (one per boundary).
    #[must_use]
    pub fn cutoffs(&self) -> &[u32] {
        &self.cutoffs
    }

    /// Total number of faults across all sets.
    #[must_use]
    pub fn total(&self) -> usize {
        self.sets.iter().map(FaultList::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_netlist::iscas::s27;
    use pdf_paths::PathEnumerator;

    fn faults() -> FaultList {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        FaultList::build(&c, &paths.store).0
    }

    #[test]
    fn cumulative_rule_matches_histogram() {
        let list = faults();
        let h = LengthHistogram::from_lengths(list.delays());
        let split = TargetSplit::by_cumulative_length(&list, 10);
        let i0 = h.cutoff(10).unwrap();
        assert_eq!(split.i0(), i0);
        let cutoff = h.length_at(i0).unwrap();
        assert!(split.p0().iter().all(|e| e.delay >= cutoff));
        assert!(split.p1().iter().all(|e| e.delay < cutoff));
        assert_eq!(split.p0().len(), h.classes()[i0].cumulative);
    }

    #[test]
    fn oversized_threshold_puts_everything_in_p0() {
        let list = faults();
        let split = TargetSplit::by_cumulative_length(&list, 1_000_000);
        assert_eq!(split.p0().len(), list.len());
        assert!(split.p1().is_empty());
    }

    #[test]
    fn k_set_partition_covers_and_respects_bounds() {
        let list = faults();
        let split = TargetSplit::by_thresholds(&list, &[10, 8]);
        assert_eq!(split.sets().len(), 3);
        assert_eq!(split.total(), list.len());
        assert!(split.sets()[0].iter().all(|e| e.delay >= 10));
        assert!(split.sets()[1].iter().all(|e| (8..10).contains(&e.delay)));
        assert!(split.sets()[2].iter().all(|e| e.delay < 8));
    }

    #[test]
    fn nested_cumulative_matches_the_two_set_rule_at_k2() {
        let list = faults();
        let nested = TargetSplit::by_nested_cumulative(&list, 10, 2);
        let flat = TargetSplit::by_cumulative_length(&list, 10);
        assert_eq!(nested.i0(), flat.i0());
        assert_eq!(nested.cutoffs(), flat.cutoffs());
        assert_eq!(nested.p0().len(), flat.p0().len());
        assert_eq!(nested.p1().len(), flat.p1().len());
    }

    #[test]
    fn nested_cumulative_builds_k_sets_that_cover_the_population() {
        let list = faults();
        for k in 2..=4 {
            let split = TargetSplit::by_nested_cumulative(&list, 5, k);
            assert_eq!(split.sets().len(), k, "k={k}");
            assert_eq!(split.total(), list.len(), "k={k}");
            // Sets are ordered most-critical first: every fault in set j
            // is on a path at least as long as every fault in set j+1.
            for w in split.sets().windows(2) {
                let min_prev = w[0].iter().map(|e| e.delay).min();
                let max_next = w[1].iter().map(|e| e.delay).max();
                if let (Some(lo), Some(hi)) = (min_prev, max_next) {
                    assert!(lo > hi);
                }
            }
            // Set 0 is the same P_0 regardless of k.
            let flat = TargetSplit::by_cumulative_length(&list, 5);
            assert_eq!(split.p0().len(), flat.p0().len(), "k={k}");
        }
    }

    #[test]
    fn nested_cumulative_pads_exhausted_populations_with_empty_sets() {
        let list = faults();
        // n_p0 larger than the population: everything lands in set 0 and
        // the trailing sets are empty but still present.
        let split = TargetSplit::by_nested_cumulative(&list, 1_000_000, 4);
        assert_eq!(split.sets().len(), 4);
        assert_eq!(split.p0().len(), list.len());
        assert!(split.sets()[1..].iter().all(FaultList::is_empty));
    }

    #[test]
    #[should_panic(expected = "at least two sets")]
    fn nested_cumulative_rejects_k1() {
        let list = faults();
        let _ = TargetSplit::by_nested_cumulative(&list, 10, 1);
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn non_decreasing_thresholds_panic() {
        let list = faults();
        let _ = TargetSplit::by_thresholds(&list, &[8, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn empty_thresholds_panic() {
        let list = faults();
        let _ = TargetSplit::by_thresholds(&list, &[]);
    }
}
