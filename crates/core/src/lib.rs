//! Test enrichment ATPG for path delay faults using multiple sets of
//! target faults — a reproduction of Pomeranz & Reddy, DATE 2002.
//!
//! Test sets for path delay faults normally target only the faults on the
//! *longest* circuit paths (`P_0`). This crate implements the paper's
//! observation and remedy: tests generated for `P_0` rarely detect the
//! next-to-longest-path faults (`P_1`) by accident, yet those faults
//! matter because path-length estimation is inexact — and they can be
//! detected **for free**, without increasing the number of tests, by
//! giving the generator two sets of target faults.
//!
//! The pipeline:
//!
//! 1. enumerate the longest-path fault population `P` with
//!    [`pdf_paths::PathEnumerator`] and eliminate undetectable faults with
//!    [`pdf_faults::FaultList`];
//! 2. split `P` into `P_0`/`P_1` with [`TargetSplit`];
//! 3. run [`BasicAtpg`] (single set, four compaction heuristics) or
//!    [`EnrichmentAtpg`] (multi-set, the paper's contribution);
//! 4. measure with [`TestSet::coverage`].
//!
//! # Example
//!
//! ```
//! use pdf_atpg::{BasicAtpg, EnrichmentAtpg, TargetSplit};
//! use pdf_faults::FaultList;
//! use pdf_netlist::iscas::s27;
//! use pdf_paths::PathEnumerator;
//!
//! let circuit = s27();
//! let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
//! let (faults, _) = FaultList::build(&circuit, &paths.store);
//! let split = TargetSplit::by_cumulative_length(&faults, 10);
//!
//! let basic = BasicAtpg::new(&circuit).with_seed(2002).run(split.p0());
//! let enriched = EnrichmentAtpg::new(&circuit).with_seed(2002).run(&split);
//!
//! // Enrichment detects extra P1 faults at essentially the same test count.
//! assert!(enriched.detected_total() >= basic.detected_in_set(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod generator;
mod justify;
mod target;
mod testset;

pub use exact::{ExactJustifier, ExactOutcome};
pub use generator::{
    config_fingerprint, AtpgConfig, AtpgOutcome, AtpgStats, BasicAtpg, Compaction, EnrichmentAtpg,
    ResumeError, SecondaryMode,
};
pub use justify::{BranchGuide, Justified, Justifier, JustifyStats, DEFAULT_CONE_CACHE};
pub use target::TargetSplit;
pub use testset::{Coverage, ParseTestSetError, TestSet};
// The simulation option block is part of this crate's public API:
// `TestSet::coverage_with` / `TestSet::minimized_with` and
// `Justifier::with_options` take it (a bare `SimBackend` converts).
pub use pdf_sim::{SimBackend, SimOptions, SimWidth};
// Run control is part of the public generation API: `AtpgConfig` carries
// a budget and a checkpoint policy, `run_resumed` consumes a checkpoint.
pub use pdf_runctl::{
    previous_generation_path, BudgetSpec, CancelToken, Checkpoint, CheckpointError,
    CheckpointPolicy, Deadline, ParseBudgetError, RunBudget, DEFAULT_CHECKPOINT_EVERY,
};

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use crate::{
        AtpgConfig, BasicAtpg, Compaction, EnrichmentAtpg, Justifier, TargetSplit, TestSet,
    };
}
