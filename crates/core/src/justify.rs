//! The simulation-based justification procedure (paper Sec. 2.1).
//!
//! Given a requirement set (the union of the `A(p)` of all faults a test
//! under construction must detect), the justifier searches for a fully
//! specified two-pattern test satisfying it:
//!
//! 1. every primary input starts as `β = xxx`;
//! 2. **necessary values**: for every input and every pattern position,
//!    trial-assign `0` and `1`; if one value makes the simulated waveforms
//!    *violate* a requirement (specified-vs-specified mismatch), the other
//!    value is assigned permanently; if both conflict, justification
//!    fails;
//! 3. when no necessary values remain, a **decision** is made: an input
//!    with exactly one specified pattern value is stabilized (the value is
//!    copied to the other pattern and the intermediate position), else a
//!    random unspecified position of a random input is set to a random
//!    value — then step 2 repeats;
//! 4. when every relevant input is specified, the waveforms are simulated
//!    once more and the requirements checked for full *satisfaction*
//!    (hazard-freeness included). Inputs outside the requirements' cone
//!    are filled randomly.
//!
//! The implementation restricts simulation to the fanin cone of the
//! constrained lines — a pure optimization: inputs outside the cone cannot
//! produce or resolve conflicts, exactly as in the paper where they end up
//! randomly specified.

use pdf_faults::Assignments;
use pdf_logic::{Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind, SplitMix64, TwoPattern};

/// A successful justification: a fully specified two-pattern test plus the
/// full-circuit waveforms it induces.
#[derive(Clone, Debug)]
pub struct Justified {
    /// The fully specified two-pattern test.
    pub test: TwoPattern,
    /// Simulated waveform of every line under `test`, indexed by
    /// [`LineId::index`]. Reusable for fault simulation.
    pub waves: Vec<Triple>,
    /// The (input line, first-pattern value, second-pattern value)
    /// assignments the search actually committed — the requirement cone's
    /// inputs only. Everything else in [`Justified::test`] is random
    /// filler. Used by the freeze-values secondary-target mode.
    pub assignment: Vec<(LineId, Value, Value)>,
}

/// Counters accumulated by a [`Justifier`] across calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JustifyStats {
    /// Total justification calls.
    pub calls: usize,
    /// Calls that produced a test.
    pub successes: usize,
    /// Calls that failed on a both-values conflict.
    pub conflicts: usize,
    /// Calls that failed the final hazard/satisfaction check.
    pub unsatisfied: usize,
    /// Cone simulations performed (the dominant cost).
    pub simulations: usize,
}

/// The simulation-based justification engine.
///
/// The engine owns a deterministic RNG: two engines created with the same
/// seed and fed the same call sequence produce identical tests.
///
/// # Example
///
/// ```
/// use pdf_atpg::Justifier;
/// use pdf_faults::{robust_assignments, PathDelayFault, Polarity};
/// use pdf_netlist::{iscas::s27, LineId};
/// use pdf_paths::Path;
///
/// let circuit = s27();
/// let path: Path = [2usize, 9, 10, 15].iter().map(|&k| LineId::new(k - 1)).collect();
/// let fault = PathDelayFault::new(path, Polarity::SlowToRise);
/// let a = robust_assignments(&circuit, &fault)?;
///
/// let mut justifier = Justifier::new(&circuit, 2002);
/// let result = justifier.justify(&a).expect("the paper's example fault is testable");
/// assert!(result.test.is_fully_specified());
/// # Ok::<(), pdf_faults::ConditionError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Justifier<'c> {
    circuit: &'c Circuit,
    rng: SplitMix64,
    attempts: u32,
    stats: JustifyStats,
    /// Scratch waveform buffer, one slot per line.
    scratch: Vec<Triple>,
}

impl<'c> Justifier<'c> {
    /// Creates a justifier with the given RNG seed and a single attempt
    /// per call (the paper's behaviour).
    #[must_use]
    pub fn new(circuit: &'c Circuit, seed: u64) -> Justifier<'c> {
        Justifier {
            circuit,
            rng: SplitMix64::new(seed),
            attempts: 1,
            stats: JustifyStats::default(),
            scratch: vec![Triple::UNKNOWN; circuit.line_count()],
        }
    }

    /// Sets the number of randomized attempts per call (≥ 1). More
    /// attempts trade run time for fewer random misses — the paper notes
    /// such misses as the source of its run-to-run variation.
    #[must_use]
    pub fn with_attempts(mut self, attempts: u32) -> Justifier<'c> {
        self.attempts = attempts.max(1);
        self
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> JustifyStats {
        self.stats
    }

    /// Searches for a fully specified two-pattern test satisfying `req`.
    ///
    /// Returns `None` when the (randomized) search fails; the requirements
    /// may or may not be satisfiable in that case.
    pub fn justify(&mut self, req: &Assignments) -> Option<Justified> {
        self.justify_seeded(req, &[])
    }

    /// Like [`Justifier::justify`], but input values listed in `frozen`
    /// are pinned before the search starts — the Goel–Rosales style of
    /// dynamic compaction (the paper's reference \[8\]) where a secondary
    /// target may only *specify unspecified values* of the test under
    /// construction, never revise committed ones.
    ///
    /// Entries of `frozen` whose line is outside the requirements' cone
    /// are ignored (they cannot influence the constrained lines).
    pub fn justify_seeded(
        &mut self,
        req: &Assignments,
        frozen: &[(LineId, Value, Value)],
    ) -> Option<Justified> {
        self.stats.calls += 1;
        let cone = Cone::build(self.circuit, req);
        for attempt in 0..self.attempts {
            if attempt > 0 {
                pdf_telemetry::count(pdf_telemetry::counters::JUSTIFY_RETRIES, 1);
            }
            if let Some(result) = self.attempt(req, &cone, frozen) {
                self.stats.successes += 1;
                return Some(result);
            }
        }
        None
    }

    fn attempt(
        &mut self,
        req: &Assignments,
        cone: &Cone,
        frozen: &[(LineId, Value, Value)],
    ) -> Option<Justified> {
        let n = cone.pis.len();
        // (first, last) value per cone PI.
        let mut state: Vec<(Value, Value)> = vec![(Value::X, Value::X); n];
        for &(line, v1, v2) in frozen {
            if let Some(k) = cone.pis.iter().position(|&p| p == line) {
                state[k] = (v1, v2);
            }
        }
        // Establish the scratch invariant: scratch = simulation of `state`.
        self.sim_cone(cone, &state);
        self.stats.simulations += 1;

        loop {
            // Necessary-value fixpoint.
            loop {
                let mut assigned = false;
                for i in 0..n {
                    for pos in 0..2 {
                        if pick(&state[i], pos).is_specified() {
                            continue;
                        }
                        let zero_bad = self.violates(cone, &mut state, i, pos, Value::Zero);
                        let one_bad = self.violates(cone, &mut state, i, pos, Value::One);
                        match (zero_bad, one_bad) {
                            (true, true) => {
                                self.stats.conflicts += 1;
                                return None;
                            }
                            (true, false) => {
                                set(&mut state[i], pos, Value::One);
                                self.apply(cone, &state, i);
                                assigned = true;
                            }
                            (false, true) => {
                                set(&mut state[i], pos, Value::Zero);
                                self.apply(cone, &state, i);
                                assigned = true;
                            }
                            (false, false) => {}
                        }
                    }
                }
                if !assigned {
                    break;
                }
            }

            // All specified? Final satisfaction check.
            if state
                .iter()
                .all(|s| s.0.is_specified() && s.1.is_specified())
            {
                if req.satisfied_by(&self.scratch) {
                    return Some(self.finish(cone, &state));
                }
                self.stats.unsatisfied += 1;
                return None;
            }

            // Decision: stabilize a half-specified input if one exists...
            let decided = if let Some(i) = state
                .iter()
                .position(|s| s.0.is_specified() != s.1.is_specified())
            {
                let v = if state[i].0.is_specified() {
                    state[i].0
                } else {
                    state[i].1
                };
                state[i] = (v, v);
                i
            } else {
                // ...else a random value on a random unspecified position.
                let open: Vec<(usize, usize)> = (0..n)
                    .flat_map(|i| (0..2).map(move |pos| (i, pos)))
                    .filter(|&(i, pos)| !pick(&state[i], pos).is_specified())
                    .collect();
                debug_assert!(!open.is_empty());
                let &(i, pos) = self.rng.pick(&open);
                let v = Value::from(self.rng.next_bool());
                set(&mut state[i], pos, v);
                i
            };
            self.apply(cone, &state, decided);
            // Early exit: a decision that already violates the
            // requirements can never be completed into a satisfying test
            // (simulation values only get more specified).
            if req.violated_by(&self.scratch) {
                self.stats.conflicts += 1;
                return None;
            }
        }
    }

    /// Would assigning `value` at (`pi`, `pos`) violate `req`?
    ///
    /// Incremental: only the lines reachable from that input inside the
    /// cone are re-evaluated, then rolled back. Requirements on
    /// unreachable lines keep their (non-violating) status, so checking
    /// the reachable requirement lines suffices.
    fn violates(
        &mut self,
        cone: &Cone,
        state: &mut [(Value, Value)],
        pi: usize,
        pos: usize,
        value: Value,
    ) -> bool {
        let saved = state[pi];
        set(&mut state[pi], pos, value);
        self.stats.simulations += 1;

        let pi_line = cone.pis[pi];
        let mut undo: Vec<(u32, Triple)> = Vec::with_capacity(16);
        let old = self.scratch[pi_line.index()];
        let new = Triple::from_patterns(state[pi].0, state[pi].1);
        undo.push((pi_line.index() as u32, old));
        self.scratch[pi_line.index()] = new;
        for &id in &cone.reach[pi] {
            let line = self.circuit.line(id);
            let new = match line.kind() {
                LineKind::Input => unreachable!("reach lists exclude inputs"),
                LineKind::Branch { stem } => self.scratch[stem.index()],
                LineKind::Gate(kind) => {
                    kind.eval_triples(line.fanin().iter().map(|f| self.scratch[f.index()]))
                }
            };
            let slot = &mut self.scratch[id.index()];
            if *slot != new {
                undo.push((id.index() as u32, *slot));
                *slot = new;
            }
        }
        let bad = cone.reach_req[pi]
            .iter()
            .any(|&(line, r)| !self.scratch[line.index()].is_compatible(r));
        for (raw, old) in undo.into_iter().rev() {
            self.scratch[raw as usize] = old;
        }
        state[pi] = saved;
        bad
    }

    /// Commits the scratch waveforms to the current `state` after input
    /// `pi` changed.
    fn apply(&mut self, cone: &Cone, state: &[(Value, Value)], pi: usize) {
        self.stats.simulations += 1;
        let pi_line = cone.pis[pi];
        self.scratch[pi_line.index()] = Triple::from_patterns(state[pi].0, state[pi].1);
        for &id in &cone.reach[pi] {
            let line = self.circuit.line(id);
            self.scratch[id.index()] = match line.kind() {
                LineKind::Input => unreachable!("reach lists exclude inputs"),
                LineKind::Branch { stem } => self.scratch[stem.index()],
                LineKind::Gate(kind) => {
                    kind.eval_triples(line.fanin().iter().map(|f| self.scratch[f.index()]))
                }
            };
        }
    }

    /// Simulates the whole cone into the scratch buffer (out-of-cone lines
    /// stay unknown).
    fn sim_cone(&mut self, cone: &Cone, state: &[(Value, Value)]) {
        for (k, &pi) in cone.pis.iter().enumerate() {
            self.scratch[pi.index()] = Triple::from_patterns(state[k].0, state[k].1);
        }
        for &id in &cone.order {
            let line = self.circuit.line(id);
            self.scratch[id.index()] = match line.kind() {
                LineKind::Input => continue,
                LineKind::Branch { stem } => self.scratch[stem.index()],
                LineKind::Gate(kind) => {
                    kind.eval_triples(line.fanin().iter().map(|f| self.scratch[f.index()]))
                }
            };
        }
    }

    /// Builds the final fully specified test and full-circuit waveforms.
    fn finish(&mut self, cone: &Cone, state: &[(Value, Value)]) -> Justified {
        let inputs = self.circuit.inputs();
        let mut v1 = vec![Value::X; inputs.len()];
        let mut v2 = vec![Value::X; inputs.len()];
        for (slot, &input) in inputs.iter().enumerate() {
            if let Some(k) = cone.pis.iter().position(|&p| p == input) {
                v1[slot] = state[k].0;
                v2[slot] = state[k].1;
            } else {
                v1[slot] = Value::from(self.rng.next_bool());
                v2[slot] = Value::from(self.rng.next_bool());
            }
        }
        let test = TwoPattern::new(v1, v2);
        let waves = pdf_netlist::simulate_triples(self.circuit, &test.to_triples());
        let assignment = cone
            .pis
            .iter()
            .zip(state)
            .map(|(&pi, s)| (pi, s.0, s.1))
            .collect();
        Justified {
            test,
            waves,
            assignment,
        }
    }
}

#[inline]
fn pick(s: &(Value, Value), pos: usize) -> Value {
    if pos == 0 {
        s.0
    } else {
        s.1
    }
}

#[inline]
fn set(s: &mut (Value, Value), pos: usize, v: Value) {
    if pos == 0 {
        s.0 = v;
    } else {
        s.1 = v;
    }
}

/// The fanin cone of a requirement set, with per-input forward
/// reachability for incremental simulation.
struct Cone {
    /// Cone lines in circuit topological order (inputs included).
    order: Vec<LineId>,
    /// The cone's primary inputs, in input order.
    pis: Vec<LineId>,
    /// For each cone input: the non-input cone lines it reaches, in
    /// topological order.
    reach: Vec<Vec<LineId>>,
    /// For each cone input: the requirement lines it reaches, paired with
    /// their required triples.
    reach_req: Vec<Vec<(LineId, Triple)>>,
}

impl Cone {
    fn build(circuit: &Circuit, req: &Assignments) -> Cone {
        let mut member = vec![false; circuit.line_count()];
        let mut stack: Vec<LineId> = req.lines().collect();
        for &l in &stack {
            member[l.index()] = true;
        }
        while let Some(l) = stack.pop() {
            for &f in circuit.line(l).fanin() {
                if !member[f.index()] {
                    member[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        let order: Vec<LineId> = circuit
            .topo_order()
            .iter()
            .copied()
            .filter(|l| member[l.index()])
            .collect();
        let pis: Vec<LineId> = circuit
            .inputs()
            .iter()
            .copied()
            .filter(|l| member[l.index()])
            .collect();

        // Topological position of each cone line, for ordering reach sets.
        let mut pos = vec![usize::MAX; circuit.line_count()];
        for (k, &l) in order.iter().enumerate() {
            pos[l.index()] = k;
        }

        let mut reach = Vec::with_capacity(pis.len());
        let mut reach_req = Vec::with_capacity(pis.len());
        let mut seen = vec![false; circuit.line_count()];
        for &pi in &pis {
            let mut lines: Vec<LineId> = Vec::new();
            let mut stack = vec![pi];
            seen[pi.index()] = true;
            while let Some(l) = stack.pop() {
                for &f in circuit.line(l).fanout() {
                    if member[f.index()] && !seen[f.index()] {
                        seen[f.index()] = true;
                        lines.push(f);
                        stack.push(f);
                    }
                }
            }
            for &l in &lines {
                seen[l.index()] = false;
            }
            seen[pi.index()] = false;
            lines.sort_unstable_by_key(|l| pos[l.index()]);
            let reqs: Vec<(LineId, Triple)> = std::iter::once(pi)
                .chain(lines.iter().copied())
                .filter_map(|l| req.get(l).map(|r| (l, r)))
                .collect();
            reach.push(lines);
            reach_req.push(reqs);
        }
        Cone {
            order,
            pis,
            reach,
            reach_req,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_faults::{robust_assignments, PathDelayFault, Polarity};
    use pdf_netlist::iscas::s27;
    use pdf_paths::Path;

    fn line(k: usize) -> LineId {
        LineId::new(k - 1)
    }

    fn s27_fault(ids: &[usize], pol: Polarity) -> PathDelayFault {
        let path: Path = ids.iter().map(|&k| line(k)).collect();
        PathDelayFault::new(path, pol)
    }

    #[test]
    fn justifies_paper_example() {
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let mut j = Justifier::new(&c, 42);
        let r = j.justify(&a).expect("testable fault");
        assert!(r.test.is_fully_specified());
        assert!(a.satisfied_by(&r.waves));
        assert_eq!(j.stats().successes, 1);
    }

    #[test]
    fn justified_test_is_deterministic_per_seed() {
        let c = s27();
        let f = s27_fault(
            &[1, 8, 13, 14, 16, 19, 20, 21, 22, 25],
            Polarity::SlowToRise,
        );
        let a = robust_assignments(&c, &f).unwrap();
        let r1 = Justifier::new(&c, 7).justify(&a).unwrap();
        let r2 = Justifier::new(&c, 7).justify(&a).unwrap();
        assert_eq!(r1.test, r2.test);
    }

    #[test]
    fn unsatisfiable_requirements_fail() {
        let c = s27();
        // Two requirements that no test satisfies: line 8 = NOT(1) must be
        // stable 1 while line 1 is stable 1 as well.
        let mut req = pdf_faults::Assignments::new();
        req.require(line(1), Triple::STABLE1).unwrap();
        req.require(line(8), Triple::STABLE1).unwrap();
        let mut j = Justifier::new(&c, 3);
        assert!(j.justify(&req).is_none());
        assert!(j.stats().conflicts > 0);
    }

    #[test]
    fn every_testable_s27_fault_justifies_with_retries() {
        // With a handful of attempts, the randomized engine should find a
        // test for every robustly testable fault of this tiny circuit.
        let c = s27();
        let paths = pdf_paths::PathEnumerator::new(&c)
            .with_cap(100_000)
            .enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        let mut j = Justifier::new(&c, 11).with_attempts(8);
        let mut found = 0usize;
        for e in faults.iter() {
            if let Some(r) = j.justify(&e.assignments) {
                assert!(e.assignments.satisfied_by(&r.waves), "{}", e.fault);
                found += 1;
            }
        }
        // s27's robustly testable fault population is well over half the
        // candidates; exact counts are pinned by integration tests.
        assert!(found > faults.len() / 2, "found {found}/{}", faults.len());
    }

    #[test]
    fn merged_requirements_detect_both_faults() {
        let c = s27();
        let f1 = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let f2 = s27_fault(&[1, 8, 12, 25], Polarity::SlowToRise);
        let a1 = robust_assignments(&c, &f1).unwrap();
        let a2 = robust_assignments(&c, &f2).unwrap();
        if let Some(merged) = a1.merged(&a2) {
            let mut j = Justifier::new(&c, 5).with_attempts(4);
            if let Some(r) = j.justify(&merged) {
                assert!(a1.satisfied_by(&r.waves));
                assert!(a2.satisfied_by(&r.waves));
            }
        }
    }

    #[test]
    fn out_of_cone_inputs_are_randomized_but_test_complete() {
        let c = s27();
        // The fault on (3,15): cone involves inputs 2, 3, 7 only.
        let f = s27_fault(&[3, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let r = Justifier::new(&c, 9).justify(&a).unwrap();
        assert!(r.test.is_fully_specified());
        assert_eq!(r.test.len(), 7);
    }

    #[test]
    fn stats_accumulate() {
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let mut j = Justifier::new(&c, 1);
        let _ = j.justify(&a);
        let _ = j.justify(&a);
        assert_eq!(j.stats().calls, 2);
        assert!(j.stats().simulations > 0);
    }
}
