//! The simulation-based justification procedure (paper Sec. 2.1).
//!
//! Given a requirement set (the union of the `A(p)` of all faults a test
//! under construction must detect), the justifier searches for a fully
//! specified two-pattern test satisfying it:
//!
//! 1. every primary input starts as `β = xxx`;
//! 2. **necessary values**: for every input and every pattern position,
//!    trial-assign `0` and `1`; if one value makes the simulated waveforms
//!    *violate* a requirement (specified-vs-specified mismatch), the other
//!    value is assigned permanently; if both conflict, justification
//!    fails;
//! 3. **random completion**: the surviving free positions are filled with
//!    random values in groups of [`pdf_sim::LANES`] (= 64) complete
//!    candidate tests, all groups drawn up front. The packed backend
//!    simulates up to `tile width / 64` groups per bit-plane pass (one
//!    pass at width 64, fewer passes as the tile widens); the scalar
//!    oracle walks the same candidates one cone simulation each. The
//!    lowest-numbered candidate whose waveforms satisfy every requirement
//!    (hazard-freeness included) becomes the witness, so every backend,
//!    tile width and event mode returns the same test;
//! 4. if no completion block hits, the paper's **guided decision search**
//!    runs as a fallback: an input with exactly one specified pattern
//!    value is stabilized, else a random unspecified position of a random
//!    input is set to a random value — then step 2 repeats until the test
//!    is fully specified or a conflict proves the union unjustifiable.
//!
//! The implementation restricts simulation to the fanin cone of the
//! constrained lines — a pure optimization: inputs outside the cone cannot
//! produce or resolve conflicts, exactly as in the paper where they end up
//! randomly specified. Cone topologies are memoized in an LRU keyed by the
//! requirement line-set, so the repeated secondary-candidate trials of a
//! generation session stop rebuilding the same reachability lists.

use std::collections::HashMap;
use std::rc::Rc;

use pdf_faults::Assignments;
use pdf_logic::{Triple, Value};
use pdf_netlist::{Circuit, LineId, LineKind, SplitMix64, TwoPattern};
use pdf_runctl::RunBudget;
use pdf_sim::{PackedBlock, SimBackend, SimOptions, SimWidth, SimWord, LANES};

/// Default capacity (entries) of the cone-topology LRU cache.
pub const DEFAULT_CONE_CACHE: usize = 64;

/// Per-line branching costs guiding the justifier's decision search —
/// plain data, so the core stays independent of how the costs are
/// computed. `pdf-analyze`'s SCOAP pass
/// (`Testability::cc0_table`/`cc1_table`) is the canonical producer;
/// drivers construct the guide with [`BranchGuide::new`] and attach it
/// via [`Justifier::with_guide`] or `AtpgConfig::guide`.
///
/// With a guide attached, the guided search's random decision (paper
/// step 3's fallback) becomes deterministic: the *hardest* open input
/// (largest `max(cost0, cost1)`) is decided first, at its *easier*
/// value — and no RNG is drawn for the decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchGuide {
    cost0: Vec<u32>,
    cost1: Vec<u32>,
}

impl BranchGuide {
    /// Builds a guide from per-line 0/1 controllability costs, indexed by
    /// [`LineId::index`].
    ///
    /// # Panics
    ///
    /// Panics if the tables differ in length.
    #[must_use]
    pub fn new(cost0: Vec<u32>, cost1: Vec<u32>) -> BranchGuide {
        assert_eq!(
            cost0.len(),
            cost1.len(),
            "branch guide cost tables must cover the same lines"
        );
        BranchGuide { cost0, cost1 }
    }

    /// How hard `line` is to control at all: `max(cost0, cost1)`. Lines
    /// beyond the tables cost 0 (never preferred).
    #[must_use]
    pub fn difficulty(&self, line: LineId) -> u32 {
        let i = line.index();
        match (self.cost0.get(i), self.cost1.get(i)) {
            (Some(&c0), Some(&c1)) => c0.max(c1),
            _ => 0,
        }
    }

    /// The cheaper value to set `line` to (ties break to 0, the SCOAP
    /// convention).
    #[must_use]
    pub fn easier_value(&self, line: LineId) -> Value {
        let i = line.index();
        match (self.cost0.get(i), self.cost1.get(i)) {
            (Some(&c0), Some(&c1)) if c1 < c0 => Value::One,
            _ => Value::Zero,
        }
    }

    /// The summed cost of controlling every steady (second-pattern) value
    /// an assignment set requires — a fault-difficulty key for
    /// generation-order heuristics.
    #[must_use]
    pub fn assignment_cost(&self, assignments: &Assignments) -> u32 {
        assignments.iter().fold(0u32, |acc, (line, triple)| {
            let i = line.index();
            let cost = match triple.last() {
                Value::Zero => self.cost0.get(i).copied().unwrap_or(0),
                Value::One => self.cost1.get(i).copied().unwrap_or(0),
                Value::X => 0,
            };
            acc.saturating_add(cost)
        })
    }
}

/// A successful justification: a fully specified two-pattern test plus the
/// full-circuit waveforms it induces.
#[derive(Clone, Debug)]
pub struct Justified {
    /// The fully specified two-pattern test.
    pub test: TwoPattern,
    /// Simulated waveform of every line under `test`, indexed by
    /// [`LineId::index`]. Reusable for fault simulation.
    pub waves: Vec<Triple>,
    /// The (input line, first-pattern value, second-pattern value)
    /// assignments the search actually committed — the requirement cone's
    /// inputs only. Everything else in [`Justified::test`] is random
    /// filler. Used by the freeze-values secondary-target mode.
    pub assignment: Vec<(LineId, Value, Value)>,
}

/// Counters accumulated by a [`Justifier`] across calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JustifyStats {
    /// Total justification calls.
    pub calls: usize,
    /// Calls that produced a test.
    pub successes: usize,
    /// Calls that failed on a both-values conflict.
    pub conflicts: usize,
    /// Calls that failed the final hazard/satisfaction check.
    pub unsatisfied: usize,
    /// Cone simulations performed (a packed 64-lane block counts as one).
    pub simulations: usize,
    /// Random completions evaluated. The packed backend evaluates whole
    /// passes (up to its tile width in lanes) at once; the scalar oracle
    /// stops at the first satisfying lane, so its count can be lower for
    /// the same calls.
    pub completion_attempts: usize,
    /// Bit-plane completion passes simulated (packed backend). A pass
    /// covers up to `tile width` candidate lanes, so this count shrinks
    /// as the width grows.
    pub packed_blocks: usize,
    /// Calls resolved by a random-completion lane rather than the guided
    /// decision search.
    pub lane_hits: usize,
    /// Cone topologies served from the LRU cache.
    pub cone_hits: usize,
    /// Cone topologies built from scratch.
    pub cone_misses: usize,
    /// Lines actually (re-)evaluated by packed completion passes — with
    /// event-driven propagation on, far fewer than `order length × passes`
    /// because frozen-pin regions settle once and stay settled.
    pub events_propagated: u64,
    /// Lines packed completion passes visited but skipped because no
    /// fanin rail changed since the previous pass.
    pub lines_skipped: u64,
    /// Guided-search decisions taken deterministically by an attached
    /// [`BranchGuide`] instead of the random pick. Always 0 without a
    /// guide.
    pub scoap_guided_branches: usize,
}

impl JustifyStats {
    /// Adds another engine's counters into this one. The parallel
    /// generator gives every speculative build its own justifier and
    /// absorbs the per-build deltas at commit, in sequence order, so the
    /// merged totals are schedule-independent.
    pub fn absorb(&mut self, other: &JustifyStats) {
        self.calls += other.calls;
        self.successes += other.successes;
        self.conflicts += other.conflicts;
        self.unsatisfied += other.unsatisfied;
        self.simulations += other.simulations;
        self.completion_attempts += other.completion_attempts;
        self.packed_blocks += other.packed_blocks;
        self.lane_hits += other.lane_hits;
        self.cone_hits += other.cone_hits;
        self.cone_misses += other.cone_misses;
        self.events_propagated += other.events_propagated;
        self.lines_skipped += other.lines_skipped;
        self.scoap_guided_branches += other.scoap_guided_branches;
    }
}

/// The simulation-based justification engine.
///
/// The engine owns a deterministic RNG: two engines created with the same
/// seed and fed the same call sequence produce identical tests. The random
/// fill words of the completion phase are drawn identically under both
/// [`SimBackend`]s, so for a fixed seed the scalar oracle and the packed
/// kernel also agree call by call — on justifiability always, and on the
/// witness itself in the current implementation (only the former is
/// contractual; see `DESIGN.md` §10).
///
/// # Example
///
/// ```
/// use pdf_atpg::Justifier;
/// use pdf_faults::{robust_assignments, PathDelayFault, Polarity};
/// use pdf_netlist::{iscas::s27, LineId};
/// use pdf_paths::Path;
///
/// let circuit = s27();
/// let path: Path = [2usize, 9, 10, 15].iter().map(|&k| LineId::new(k - 1)).collect();
/// let fault = PathDelayFault::new(path, Polarity::SlowToRise);
/// let a = robust_assignments(&circuit, &fault)?;
///
/// let mut justifier = Justifier::new(&circuit, 2002);
/// let result = justifier.justify(&a).expect("the paper's example fault is testable");
/// assert!(result.test.is_fully_specified());
/// # Ok::<(), pdf_faults::ConditionError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Justifier<'c> {
    circuit: &'c Circuit,
    rng: SplitMix64,
    attempts: u32,
    opts: SimOptions,
    stats: JustifyStats,
    /// Scratch waveform buffer, one slot per line.
    scratch: Vec<Triple>,
    /// Reusable bit-plane arena for packed completion passes, at the
    /// width selected by [`Justifier::with_options`].
    packed: PackedArena,
    cones: ConeCache,
    /// Optional SCOAP branch guide for the guided decision search.
    guide: Option<std::sync::Arc<BranchGuide>>,
    /// Wall time spent inside completion blocks (phase 2 only).
    completion: std::time::Duration,
    /// Cooperative time/cancellation budget polled at call entry, per
    /// completion block and per guided-search decision.
    budget: RunBudget,
}

impl<'c> Justifier<'c> {
    /// Creates a justifier with the given RNG seed, a single completion
    /// block per call, the default packed backend and the default cone
    /// cache ([`DEFAULT_CONE_CACHE`]).
    #[must_use]
    pub fn new(circuit: &'c Circuit, seed: u64) -> Justifier<'c> {
        let opts = SimOptions::default();
        Justifier {
            circuit,
            rng: SplitMix64::new(seed),
            attempts: 1,
            opts,
            stats: JustifyStats::default(),
            scratch: vec![Triple::UNKNOWN; circuit.line_count()],
            packed: PackedArena::new(opts.width, opts.events),
            cones: ConeCache::new(DEFAULT_CONE_CACHE),
            guide: None,
            completion: std::time::Duration::ZERO,
            budget: RunBudget::unlimited(),
        }
    }

    /// Sets the number of 64-candidate random-completion groups per call
    /// (≥ 1). More groups trade run time for fewer random misses — the
    /// paper notes such misses as the source of its run-to-run variation.
    /// The RNG draws every group's fill words up front, so the witness
    /// (and the RNG stream) depends only on this count, never on the
    /// backend, tile width or event mode evaluating the groups.
    #[must_use]
    pub fn with_attempts(mut self, attempts: u32) -> Justifier<'c> {
        self.attempts = attempts.max(1);
        self
    }

    /// Selects the engine evaluating completion passes: the packed
    /// bit-plane kernel (default) or the scalar oracle. Both agree on
    /// justifiability for equal seeds; drivers map `PDF_SIM_BACKEND` here.
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> Justifier<'c> {
        self.opts.backend = backend;
        self
    }

    /// Installs a full simulation option block: backend, packed tile
    /// width and event-driven propagation. Replaces the packed arena, so
    /// call it before the first `justify`. All combinations produce
    /// byte-identical witnesses for equal seeds; drivers map
    /// `PDF_SIM_BACKEND`/`PDF_SIM_WIDTH`/`PDF_SIM_EVENTS` here.
    #[must_use]
    pub fn with_options(mut self, opts: impl Into<SimOptions>) -> Justifier<'c> {
        let opts = opts.into();
        self.opts = opts;
        self.packed = PackedArena::new(opts.width, opts.events);
        self
    }

    /// Resizes the cone-topology LRU (entries); `0` disables caching.
    /// Drivers map `PDF_CONE_CACHE` here.
    #[must_use]
    pub fn with_cone_cache(mut self, capacity: usize) -> Justifier<'c> {
        self.cones = ConeCache::new(capacity);
        self
    }

    /// Attaches a [`BranchGuide`]: the guided search's random decision is
    /// replaced by a deterministic hardest-line-first, easier-value pick
    /// that draws no RNG. Drivers map `PDF_SCOAP` here (the guide built
    /// from `pdf-analyze`'s SCOAP controllability tables).
    #[must_use]
    pub fn with_guide(mut self, guide: std::sync::Arc<BranchGuide>) -> Justifier<'c> {
        self.guide = Some(guide);
        self
    }

    /// Attaches a cooperative run budget. An exhausted budget makes
    /// justification calls return `None` early — at call entry, between
    /// completion blocks and between guided-search decisions — without
    /// consuming further RNG beyond the aborted phase.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Justifier<'c> {
        self.budget = budget;
        self
    }

    /// The RNG's current internal state — checkpoint material. Feeding it
    /// back through [`Justifier::set_rng_state`] on a fresh justifier
    /// resumes the random stream exactly where this one stands.
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restores the RNG to a state previously captured with
    /// [`Justifier::rng_state`].
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = SplitMix64::from_state(state);
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> JustifyStats {
        self.stats
    }

    /// Wall time spent evaluating random-completion blocks, across all
    /// calls. [`JustifyStats::completion_attempts`] divided by this is the
    /// completion engine's throughput — the phases around it (the
    /// necessary-value fixpoint, the guided fallback) are
    /// backend-independent and excluded.
    #[must_use]
    pub fn completion_seconds(&self) -> f64 {
        self.completion.as_secs_f64()
    }

    /// Searches for a fully specified two-pattern test satisfying `req`.
    ///
    /// Returns `None` when the (randomized) search fails; the requirements
    /// may or may not be satisfiable in that case.
    pub fn justify(&mut self, req: &Assignments) -> Option<Justified> {
        self.justify_seeded(req, &[])
    }

    /// Like [`Justifier::justify`], but input values listed in `frozen`
    /// are pinned before the search starts — the Goel–Rosales style of
    /// dynamic compaction (the paper's reference \[8\]) where a secondary
    /// target may only *specify unspecified values* of the test under
    /// construction, never revise committed ones.
    ///
    /// Entries of `frozen` whose line is outside the requirements' cone
    /// are ignored (they cannot influence the constrained lines).
    pub fn justify_seeded(
        &mut self,
        req: &Assignments,
        frozen: &[(LineId, Value, Value)],
    ) -> Option<Justified> {
        let _span = pdf_telemetry::Span::enter("justify");
        self.stats.calls += 1;
        if self.budget.exhausted() {
            return None;
        }
        let cone = self.cone(req);
        let n = cone.topo.pis.len();
        // (first, last) value per cone PI.
        let mut state: Vec<(Value, Value)> = vec![(Value::X, Value::X); n];
        for &(line, v1, v2) in frozen {
            if let Some(k) = cone.topo.pis.iter().position(|&p| p == line) {
                state[k] = (v1, v2);
            }
        }
        // Establish the scratch invariant: scratch = simulation of `state`.
        self.sim_cone(&cone, &state);
        self.stats.simulations += 1;

        // Phase 1 — the necessary-value fixpoint. Purely deterministic,
        // shared by both backends.
        if !self.fixpoint(&cone, &mut state) {
            self.stats.conflicts += 1;
            return None;
        }
        if fully_specified(&state) {
            if req.satisfied_by(&self.scratch) {
                self.stats.successes += 1;
                return Some(self.finish(&cone, &state));
            }
            self.stats.unsatisfied += 1;
            return None;
        }

        // Phase 2 — random completion in groups of 64 candidates. Every
        // group's fill words are drawn up front, group-major (group `g`,
        // open slot `k` is draw `g·|open| + k`; bit `j` of a word is
        // candidate `g·64 + j`'s value for that slot), so the RNG stream
        // and the first satisfying candidate — the witness — are
        // identical for every backend, tile width and event mode. Wider
        // tiles merely evaluate more groups per propagation pass.
        let open: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..2).map(move |pos| (i, pos)))
            .filter(|&(i, pos)| !pick(&state[i], pos).is_specified())
            .collect();
        if self.budget.exhausted() {
            return None;
        }
        let groups = self.attempts as usize;
        let mut fills = vec![0u64; groups * open.len()];
        for w in &mut fills {
            *w = self.rng.next_u64();
        }
        let start = std::time::Instant::now();
        let outcome = self.completion_groups(req, &cone, &state, &open, &fills, groups);
        self.completion += start.elapsed();
        match outcome {
            PassOutcome::Aborted => return None,
            PassOutcome::Hit(candidate) => {
                let g = candidate / LANES;
                if g > 0 {
                    pdf_telemetry::count(pdf_telemetry::counters::JUSTIFY_RETRIES, g as u64);
                }
                pdf_telemetry::count(pdf_telemetry::counters::JUSTIFY_LANE_HITS, 1);
                self.stats.lane_hits += 1;
                let mut full = state;
                for (k, &(i, pos)) in open.iter().enumerate() {
                    let bit = fills[g * open.len() + k] >> (candidate % LANES) & 1 == 1;
                    set(&mut full[i], pos, Value::from(bit));
                }
                self.stats.successes += 1;
                return Some(self.finish(&cone, &full));
            }
            PassOutcome::Miss => {
                if groups > 1 {
                    pdf_telemetry::count(
                        pdf_telemetry::counters::JUSTIFY_RETRIES,
                        (groups - 1) as u64,
                    );
                }
            }
        }

        // Phase 3 — the paper's guided decision search, resumed from the
        // fixpoint state: insurance for requirements whose satisfying set
        // is too sparse for random completion to hit.
        self.sim_cone(&cone, &state); // restore the scratch invariant
        self.stats.simulations += 1;
        self.guided(req, &cone, state)
    }

    /// Builds (or fetches) the cone of `req` and projects the requirement
    /// triples onto its per-input reachability lists.
    fn cone(&mut self, req: &Assignments) -> Cone {
        let topo = self.cones.topo(self.circuit, req, &mut self.stats);
        Cone::project(topo, req)
    }

    /// Runs the necessary-value analysis to its fixpoint. Returns `false`
    /// on a both-values conflict (the requirements are unjustifiable).
    /// Maintains the scratch invariant.
    fn fixpoint(&mut self, cone: &Cone, state: &mut [(Value, Value)]) -> bool {
        let n = cone.topo.pis.len();
        loop {
            let mut assigned = false;
            for i in 0..n {
                for pos in 0..2 {
                    if pick(&state[i], pos).is_specified() {
                        continue;
                    }
                    let zero_bad = self.violates(cone, state, i, pos, Value::Zero);
                    let one_bad = self.violates(cone, state, i, pos, Value::One);
                    match (zero_bad, one_bad) {
                        (true, true) => return false,
                        (true, false) => {
                            set(&mut state[i], pos, Value::One);
                            self.apply(cone, state, i);
                            assigned = true;
                        }
                        (false, true) => {
                            set(&mut state[i], pos, Value::Zero);
                            self.apply(cone, state, i);
                            assigned = true;
                        }
                        (false, false) => {}
                    }
                }
            }
            if !assigned {
                return true;
            }
        }
    }

    /// Evaluates every random-completion group of the call (free slots
    /// filled from `fills`, group-major: bit `j` of
    /// `fills[g·|open| + k]` is candidate `g·64 + j`'s value for
    /// `open[k]`). Dispatches to the backend/width the justifier was
    /// configured with; the outcome is identical across all of them.
    fn completion_groups(
        &mut self,
        req: &Assignments,
        cone: &Cone,
        state: &[(Value, Value)],
        open: &[(usize, usize)],
        fills: &[u64],
        groups: usize,
    ) -> PassOutcome {
        if self.opts.backend == SimBackend::Scalar {
            return self.scalar_groups(req, cone, state, open, fills, groups);
        }
        let Justifier {
            circuit,
            packed,
            stats,
            budget,
            ..
        } = self;
        match packed {
            PackedArena::W64(b) => packed_passes(
                b, circuit, req, cone, state, open, fills, groups, stats, budget,
            ),
            PackedArena::W256(b) => packed_passes(
                b, circuit, req, cone, state, open, fills, groups, stats, budget,
            ),
            PackedArena::W512(b) => packed_passes(
                b, circuit, req, cone, state, open, fills, groups, stats, budget,
            ),
        }
    }

    /// The oracle: the same candidates in the same global order, one cone
    /// simulation each, stopping at the first satisfying one.
    fn scalar_groups(
        &mut self,
        req: &Assignments,
        cone: &Cone,
        state: &[(Value, Value)],
        open: &[(usize, usize)],
        fills: &[u64],
        groups: usize,
    ) -> PassOutcome {
        let mut lane_state = state.to_vec();
        for g in 0..groups {
            if g > 0 && self.budget.exhausted() {
                return PassOutcome::Aborted;
            }
            for bit in 0..LANES {
                for (k, &(i, pos)) in open.iter().enumerate() {
                    set(
                        &mut lane_state[i],
                        pos,
                        Value::from(fills[g * open.len() + k] >> bit & 1 == 1),
                    );
                }
                self.sim_cone(cone, &lane_state);
                self.stats.simulations += 1;
                self.stats.completion_attempts += 1;
                if req.satisfied_by(&self.scratch) {
                    return PassOutcome::Hit(g * LANES + bit);
                }
            }
        }
        PassOutcome::Miss
    }

    /// The guided decision search (paper steps 2–4), entered with the
    /// necessary-value fixpoint already reached and the scratch invariant
    /// holding for `state`.
    fn guided(
        &mut self,
        req: &Assignments,
        cone: &Cone,
        mut state: Vec<(Value, Value)>,
    ) -> Option<Justified> {
        let n = cone.topo.pis.len();
        loop {
            if self.budget.exhausted() {
                return None;
            }
            // Decision: stabilize a half-specified input if one exists...
            let decided = if let Some(i) = state
                .iter()
                .position(|s| s.0.is_specified() != s.1.is_specified())
            {
                let v = if state[i].0.is_specified() {
                    state[i].0
                } else {
                    state[i].1
                };
                state[i] = (v, v);
                i
            } else {
                // ...else a random value on a random unspecified position —
                // or, with a guide attached, the hardest open input at its
                // easier value, deterministically and without drawing RNG.
                let open: Vec<(usize, usize)> = (0..n)
                    .flat_map(|i| (0..2).map(move |pos| (i, pos)))
                    .filter(|&(i, pos)| !pick(&state[i], pos).is_specified())
                    .collect();
                debug_assert!(!open.is_empty());
                let (i, pos, v) = if let Some(guide) = &self.guide {
                    // First-wins max keeps ties in slot order, so the pick
                    // is independent of how `open` was discovered.
                    let mut best = open[0];
                    let mut best_cost = guide.difficulty(cone.topo.pis[open[0].0]);
                    for &slot in &open[1..] {
                        let cost = guide.difficulty(cone.topo.pis[slot.0]);
                        if cost > best_cost {
                            best = slot;
                            best_cost = cost;
                        }
                    }
                    self.stats.scoap_guided_branches += 1;
                    pdf_telemetry::count(pdf_telemetry::counters::SCOAP_GUIDED_BRANCHES, 1);
                    (best.0, best.1, guide.easier_value(cone.topo.pis[best.0]))
                } else {
                    let &(i, pos) = self.rng.pick(&open);
                    (i, pos, Value::from(self.rng.next_bool()))
                };
                set(&mut state[i], pos, v);
                i
            };
            self.apply(cone, &state, decided);
            // Early exit: a decision that already violates the
            // requirements can never be completed into a satisfying test
            // (simulation values only get more specified).
            if req.violated_by(&self.scratch) {
                self.stats.conflicts += 1;
                return None;
            }
            if !self.fixpoint(cone, &mut state) {
                self.stats.conflicts += 1;
                return None;
            }
            if fully_specified(&state) {
                if req.satisfied_by(&self.scratch) {
                    self.stats.successes += 1;
                    return Some(self.finish(cone, &state));
                }
                self.stats.unsatisfied += 1;
                return None;
            }
        }
    }

    /// Would assigning `value` at (`pi`, `pos`) violate `req`?
    ///
    /// Incremental: only the lines reachable from that input inside the
    /// cone are re-evaluated, then rolled back. Requirements on
    /// unreachable lines keep their (non-violating) status, so checking
    /// the reachable requirement lines suffices.
    fn violates(
        &mut self,
        cone: &Cone,
        state: &mut [(Value, Value)],
        pi: usize,
        pos: usize,
        value: Value,
    ) -> bool {
        let saved = state[pi];
        set(&mut state[pi], pos, value);
        self.stats.simulations += 1;

        let pi_line = cone.topo.pis[pi];
        let mut undo: Vec<(u32, Triple)> = Vec::with_capacity(16);
        let old = self.scratch[pi_line.index()];
        let new = Triple::from_patterns(state[pi].0, state[pi].1);
        undo.push((pi_line.index() as u32, old));
        self.scratch[pi_line.index()] = new;
        for &id in &cone.topo.reach[pi] {
            let line = self.circuit.line(id);
            let new = match line.kind() {
                LineKind::Input => unreachable!("reach lists exclude inputs"),
                LineKind::Branch { stem } => self.scratch[stem.index()],
                LineKind::Gate(kind) => {
                    kind.eval_triples(line.fanin().iter().map(|f| self.scratch[f.index()]))
                }
            };
            let slot = &mut self.scratch[id.index()];
            if *slot != new {
                undo.push((id.index() as u32, *slot));
                *slot = new;
            }
        }
        let bad = cone.reach_req[pi]
            .iter()
            .any(|&(line, r)| !self.scratch[line.index()].is_compatible(r));
        for (raw, old) in undo.into_iter().rev() {
            self.scratch[raw as usize] = old;
        }
        state[pi] = saved;
        bad
    }

    /// Commits the scratch waveforms to the current `state` after input
    /// `pi` changed.
    fn apply(&mut self, cone: &Cone, state: &[(Value, Value)], pi: usize) {
        self.stats.simulations += 1;
        let pi_line = cone.topo.pis[pi];
        self.scratch[pi_line.index()] = Triple::from_patterns(state[pi].0, state[pi].1);
        for &id in &cone.topo.reach[pi] {
            let line = self.circuit.line(id);
            self.scratch[id.index()] = match line.kind() {
                LineKind::Input => unreachable!("reach lists exclude inputs"),
                LineKind::Branch { stem } => self.scratch[stem.index()],
                LineKind::Gate(kind) => {
                    kind.eval_triples(line.fanin().iter().map(|f| self.scratch[f.index()]))
                }
            };
        }
    }

    /// Simulates the whole cone into the scratch buffer (out-of-cone lines
    /// stay unknown).
    fn sim_cone(&mut self, cone: &Cone, state: &[(Value, Value)]) {
        for (k, &pi) in cone.topo.pis.iter().enumerate() {
            self.scratch[pi.index()] = Triple::from_patterns(state[k].0, state[k].1);
        }
        for &id in &cone.topo.order {
            let line = self.circuit.line(id);
            self.scratch[id.index()] = match line.kind() {
                LineKind::Input => continue,
                LineKind::Branch { stem } => self.scratch[stem.index()],
                LineKind::Gate(kind) => {
                    kind.eval_triples(line.fanin().iter().map(|f| self.scratch[f.index()]))
                }
            };
        }
    }

    /// Builds the final fully specified test and full-circuit waveforms.
    fn finish(&mut self, cone: &Cone, state: &[(Value, Value)]) -> Justified {
        let inputs = self.circuit.inputs();
        let mut v1 = vec![Value::X; inputs.len()];
        let mut v2 = vec![Value::X; inputs.len()];
        for (slot, &input) in inputs.iter().enumerate() {
            if let Some(k) = cone.topo.pis.iter().position(|&p| p == input) {
                v1[slot] = state[k].0;
                v2[slot] = state[k].1;
            } else {
                v1[slot] = Value::from(self.rng.next_bool());
                v2[slot] = Value::from(self.rng.next_bool());
            }
        }
        let test = TwoPattern::new(v1, v2);
        let waves = pdf_netlist::simulate_triples(self.circuit, &test.to_triples());
        let assignment = cone
            .topo
            .pis
            .iter()
            .zip(state)
            .map(|(&pi, s)| (pi, s.0, s.1))
            .collect();
        Justified {
            test,
            waves,
            assignment,
        }
    }
}

#[inline]
fn pick(s: &(Value, Value), pos: usize) -> Value {
    if pos == 0 {
        s.0
    } else {
        s.1
    }
}

#[inline]
fn set(s: &mut (Value, Value), pos: usize, v: Value) {
    if pos == 0 {
        s.0 = v;
    } else {
        s.1 = v;
    }
}

#[inline]
fn fully_specified(state: &[(Value, Value)]) -> bool {
    state
        .iter()
        .all(|s| s.0.is_specified() && s.1.is_specified())
}

/// A committed value as `(zero_rail, one_rail)` tiles broadcast across
/// every lane of the word type.
#[inline]
fn splat_rails<W: SimWord>(v: Value) -> (W, W) {
    match v {
        Value::Zero => (W::ONES, W::ZERO),
        Value::One => (W::ZERO, W::ONES),
        Value::X => (W::ZERO, W::ZERO),
    }
}

/// The justifier's reusable bit-plane arena, monomorphized at the tile
/// width selected via [`Justifier::with_options`]. Keeping the width in a
/// closed enum (rather than a type parameter on [`Justifier`]) leaves the
/// engine's public type width-independent — drivers pick the width at run
/// time from `PDF_SIM_WIDTH`.
#[derive(Clone, Debug)]
enum PackedArena {
    W64(PackedBlock<u64>),
    W256(PackedBlock<[u64; 4]>),
    W512(PackedBlock<[u64; 8]>),
}

impl PackedArena {
    fn new(width: SimWidth, events: bool) -> PackedArena {
        match width {
            SimWidth::W64 => PackedArena::W64(PackedBlock::new().with_events(events)),
            SimWidth::W256 => PackedArena::W256(PackedBlock::new().with_events(events)),
            SimWidth::W512 => PackedArena::W512(PackedBlock::new().with_events(events)),
        }
    }
}

/// Result of evaluating a call's completion groups.
enum PassOutcome {
    /// The lowest-numbered satisfying candidate (global index:
    /// `group · 64 + lane`).
    Hit(usize),
    /// No candidate satisfied the requirements.
    Miss,
    /// The run budget expired between passes.
    Aborted,
}

/// Evaluates completion groups on the packed kernel, up to `W::WORDS`
/// groups per bit-plane pass. Lane numbering within a pass is
/// sub-block-major — lane `g_local · 64 + bit` is global candidate
/// `(pass_start + g_local) · 64 + bit` — matching the scalar oracle's
/// scan order, so the first satisfying lane is the same witness.
#[allow(clippy::too_many_arguments)]
fn packed_passes<W: SimWord>(
    block: &mut PackedBlock<W>,
    circuit: &Circuit,
    req: &Assignments,
    cone: &Cone,
    state: &[(Value, Value)],
    open: &[(usize, usize)],
    fills: &[u64],
    groups: usize,
    stats: &mut JustifyStats,
    budget: &RunBudget,
) -> PassOutcome {
    pdf_telemetry::record_max(pdf_telemetry::counters::SIM_WIDTH, W::LANES as u64);
    let mut pass_start = 0usize;
    while pass_start < groups {
        if pass_start > 0 && budget.exhausted() {
            return PassOutcome::Aborted;
        }
        let here = (groups - pass_start).min(W::WORDS);
        stats.packed_blocks += 1;
        stats.completion_attempts += here * LANES;
        stats.simulations += 1;
        pdf_telemetry::count(pdf_telemetry::counters::JUSTIFY_PACKED_BLOCKS, 1);
        // Broadcast the committed values across all lanes, then overwrite
        // the free slots with their per-lane fill rails (one 64-candidate
        // group per 64-bit word of the tile).
        let mut first: Vec<(W, W)> = state.iter().map(|s| splat_rails(s.0)).collect();
        let mut last: Vec<(W, W)> = state.iter().map(|s| splat_rails(s.1)).collect();
        for (k, &(i, pos)) in open.iter().enumerate() {
            let mut zero = W::ZERO;
            let mut one = W::ZERO;
            for g in 0..here {
                let w = fills[(pass_start + g) * open.len() + k];
                zero.set_word(g, !w);
                one.set_word(g, w);
            }
            if pos == 0 {
                first[i] = (zero, one);
            } else {
                last[i] = (zero, one);
            }
        }
        block.begin_block(circuit);
        for (k, &pi) in cone.topo.pis.iter().enumerate() {
            block.set_input_rails(pi, first[k], last[k]);
        }
        block.propagate_over(circuit, &cone.topo.order);
        let kernel = block.take_kernel_stats();
        stats.events_propagated += kernel.events_propagated;
        stats.lines_skipped += kernel.lines_skipped;
        pdf_telemetry::count(
            pdf_telemetry::counters::EVENTS_PROPAGATED,
            kernel.events_propagated,
        );
        pdf_telemetry::count(pdf_telemetry::counters::LINES_SKIPPED, kernel.lines_skipped);
        // Unused tile groups of a partial pass carry broadcast-only lanes
        // that may spuriously satisfy the requirements — mask them off.
        let lanes = block.satisfied_lanes(req).and(W::low_lanes(here * LANES));
        if let Some(lane) = lanes.first_lane() {
            return PassOutcome::Hit(pass_start * LANES + lane);
        }
        pass_start += here;
    }
    PassOutcome::Miss
}

/// The requirement-independent topology of a fanin cone: every
/// requirement set over the same line-set shares one of these through the
/// justifier's LRU cache.
#[derive(Debug)]
struct ConeTopo {
    /// Cone lines in circuit topological order (inputs included).
    order: Vec<LineId>,
    /// The cone's primary inputs, in input order.
    pis: Vec<LineId>,
    /// For each cone input: the non-input cone lines it reaches, in
    /// topological order.
    reach: Vec<Vec<LineId>>,
}

impl ConeTopo {
    fn build(circuit: &Circuit, req: &Assignments) -> ConeTopo {
        let mut member = vec![false; circuit.line_count()];
        let mut stack: Vec<LineId> = req.lines().collect();
        for &l in &stack {
            member[l.index()] = true;
        }
        while let Some(l) = stack.pop() {
            for &f in circuit.line(l).fanin() {
                if !member[f.index()] {
                    member[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        let order: Vec<LineId> = circuit
            .topo_order()
            .iter()
            .copied()
            .filter(|l| member[l.index()])
            .collect();
        let pis: Vec<LineId> = circuit
            .inputs()
            .iter()
            .copied()
            .filter(|l| member[l.index()])
            .collect();

        // Topological position of each cone line, for ordering reach sets.
        let mut pos = vec![usize::MAX; circuit.line_count()];
        for (k, &l) in order.iter().enumerate() {
            pos[l.index()] = k;
        }

        let mut reach = Vec::with_capacity(pis.len());
        let mut seen = vec![false; circuit.line_count()];
        for &pi in &pis {
            let mut lines: Vec<LineId> = Vec::new();
            let mut stack = vec![pi];
            seen[pi.index()] = true;
            while let Some(l) = stack.pop() {
                for &f in circuit.line(l).fanout() {
                    if member[f.index()] && !seen[f.index()] {
                        seen[f.index()] = true;
                        lines.push(f);
                        stack.push(f);
                    }
                }
            }
            for &l in &lines {
                seen[l.index()] = false;
            }
            seen[pi.index()] = false;
            lines.sort_unstable_by_key(|l| pos[l.index()]);
            reach.push(lines);
        }
        ConeTopo { order, pis, reach }
    }
}

/// A cone instantiated for one requirement set: the (possibly cached)
/// topology plus the requirement triples projected onto each input's
/// reachability list.
#[derive(Debug)]
struct Cone {
    topo: Rc<ConeTopo>,
    /// For each cone input: the requirement lines it reaches, paired with
    /// their required triples.
    reach_req: Vec<Vec<(LineId, Triple)>>,
}

impl Cone {
    fn project(topo: Rc<ConeTopo>, req: &Assignments) -> Cone {
        let reach_req = topo
            .pis
            .iter()
            .zip(&topo.reach)
            .map(|(&pi, lines)| {
                std::iter::once(pi)
                    .chain(lines.iter().copied())
                    .filter_map(|l| req.get(l).map(|r| (l, r)))
                    .collect()
            })
            .collect();
        Cone { topo, reach_req }
    }
}

/// An LRU over cone topologies, keyed by the requirement line-set (the
/// topology depends on nothing else). Eviction is deterministic: the
/// entry with the oldest last-use tick goes first.
#[derive(Clone, Debug)]
struct ConeCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<Box<[u32]>, (u64, Rc<ConeTopo>)>,
}

impl ConeCache {
    fn new(capacity: usize) -> ConeCache {
        ConeCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn topo(
        &mut self,
        circuit: &Circuit,
        req: &Assignments,
        stats: &mut JustifyStats,
    ) -> Rc<ConeTopo> {
        if self.capacity == 0 {
            stats.cone_misses += 1;
            pdf_telemetry::count(pdf_telemetry::counters::CONE_CACHE_MISS, 1);
            return Rc::new(ConeTopo::build(circuit, req));
        }
        let key: Box<[u32]> = req.lines().map(|l| l.index() as u32).collect();
        self.tick += 1;
        let tick = self.tick;
        if let Some((t, topo)) = self.entries.get_mut(&key) {
            *t = tick;
            stats.cone_hits += 1;
            pdf_telemetry::count(pdf_telemetry::counters::CONE_CACHE_HIT, 1);
            return Rc::clone(topo);
        }
        stats.cone_misses += 1;
        pdf_telemetry::count(pdf_telemetry::counters::CONE_CACHE_MISS, 1);
        let topo = Rc::new(ConeTopo::build(circuit, req));
        if self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            if let Some(k) = oldest {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(key, (tick, Rc::clone(&topo)));
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_faults::{robust_assignments, PathDelayFault, Polarity};
    use pdf_netlist::iscas::s27;
    use pdf_paths::Path;

    fn line(k: usize) -> LineId {
        LineId::new(k - 1)
    }

    fn s27_fault(ids: &[usize], pol: Polarity) -> PathDelayFault {
        let path: Path = ids.iter().map(|&k| line(k)).collect();
        PathDelayFault::new(path, pol)
    }

    /// The backend the test process runs under (`PDF_SIM_BACKEND`), so the
    /// CI scalar/packed legs exercise both completion engines.
    fn env_backend() -> SimBackend {
        SimBackend::from_env().expect("PDF_SIM_BACKEND must parse")
    }

    #[test]
    fn justifies_paper_example() {
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let mut j = Justifier::new(&c, 42).with_backend(env_backend());
        let r = j.justify(&a).expect("testable fault");
        assert!(r.test.is_fully_specified());
        assert!(a.satisfied_by(&r.waves));
        assert_eq!(j.stats().successes, 1);
    }

    #[test]
    fn justified_test_is_deterministic_per_seed() {
        let c = s27();
        let f = s27_fault(
            &[1, 8, 13, 14, 16, 19, 20, 21, 22, 25],
            Polarity::SlowToRise,
        );
        let a = robust_assignments(&c, &f).unwrap();
        for backend in SimBackend::ALL {
            let r1 = Justifier::new(&c, 7)
                .with_backend(backend)
                .justify(&a)
                .unwrap();
            let r2 = Justifier::new(&c, 7)
                .with_backend(backend)
                .justify(&a)
                .unwrap();
            assert_eq!(r1.test, r2.test, "{backend}");
        }
    }

    #[test]
    fn justify_seeded_is_deterministic_per_seed_and_backend() {
        // The freeze-values entry point: same seed + same frozen pins must
        // reproduce the same witness, per backend.
        let c = s27();
        let f1 = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let f2 = s27_fault(&[1, 8, 12, 25], Polarity::SlowToRise);
        let a1 = robust_assignments(&c, &f1).unwrap();
        let a2 = robust_assignments(&c, &f2).unwrap();
        let merged = a1.merged(&a2).expect("compatible requirements");
        for backend in SimBackend::ALL {
            let run = || {
                let mut j = Justifier::new(&c, 11).with_backend(backend);
                let first = j.justify(&a1)?;
                let r = j.justify_seeded(&merged, &first.assignment)?;
                Some((first.test, r.test))
            };
            assert_eq!(run(), run(), "{backend}");
        }
    }

    #[test]
    fn backends_agree_on_justifiability_and_witness() {
        // Equal seeds draw equal completion fill words, so the scalar
        // oracle and the packed kernel resolve every call identically.
        let c = s27();
        let paths = pdf_paths::PathEnumerator::new(&c)
            .with_cap(100_000)
            .enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        let mut scalar = Justifier::new(&c, 19).with_backend(SimBackend::Scalar);
        let mut packed = Justifier::new(&c, 19).with_backend(SimBackend::Packed);
        for e in faults.iter() {
            let s = scalar.justify(&e.assignments);
            let p = packed.justify(&e.assignments);
            assert_eq!(s.is_some(), p.is_some(), "{}", e.fault);
            if let (Some(s), Some(p)) = (s, p) {
                assert_eq!(s.test, p.test, "{}", e.fault);
                // Every packed witness passes the scalar re-check.
                assert!(!e.assignments.violated_by(&p.waves));
                assert!(e.assignments.satisfied_by(&p.waves));
            }
        }
        assert_eq!(scalar.stats().successes, packed.stats().successes);
        assert!(packed.stats().packed_blocks > 0);
        assert_eq!(scalar.stats().packed_blocks, 0);
    }

    #[test]
    fn cone_cache_hits_on_repeated_requirements() {
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let mut j = Justifier::new(&c, 1).with_backend(env_backend());
        let _ = j.justify(&a);
        let _ = j.justify(&a);
        let _ = j.justify(&a);
        assert_eq!(j.stats().cone_misses, 1);
        assert_eq!(j.stats().cone_hits, 2);

        // Capacity 0 disables the cache entirely.
        let mut uncached = Justifier::new(&c, 1).with_cone_cache(0);
        let _ = uncached.justify(&a);
        let _ = uncached.justify(&a);
        assert_eq!(uncached.stats().cone_hits, 0);
        assert_eq!(uncached.stats().cone_misses, 2);
    }

    #[test]
    fn cone_cache_evicts_deterministically_under_pressure() {
        let c = s27();
        let paths = pdf_paths::PathEnumerator::new(&c)
            .with_cap(100_000)
            .enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        // A 2-entry cache over many distinct line-sets: plenty of misses,
        // but behaviour (and hence RNG use) stays deterministic.
        let run = || {
            let mut j = Justifier::new(&c, 23).with_cone_cache(2);
            let tests: Vec<Option<TwoPattern>> = faults
                .iter()
                .map(|e| j.justify(&e.assignments).map(|r| r.test))
                .collect();
            (tests, j.stats())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert!(s1.cone_misses > 2);
    }

    #[test]
    fn unsatisfiable_requirements_fail() {
        let c = s27();
        // Two requirements that no test satisfies: line 8 = NOT(1) must be
        // stable 1 while line 1 is stable 1 as well.
        let mut req = pdf_faults::Assignments::new();
        req.require(line(1), Triple::STABLE1).unwrap();
        req.require(line(8), Triple::STABLE1).unwrap();
        let mut j = Justifier::new(&c, 3).with_backend(env_backend());
        assert!(j.justify(&req).is_none());
        assert!(j.stats().conflicts > 0);
    }

    #[test]
    fn every_testable_s27_fault_justifies_with_retries() {
        // With a handful of completion blocks, the randomized engine
        // should find a test for every robustly testable fault of this
        // tiny circuit.
        let c = s27();
        let paths = pdf_paths::PathEnumerator::new(&c)
            .with_cap(100_000)
            .enumerate();
        let (faults, _) = pdf_faults::FaultList::build(&c, &paths.store);
        let mut j = Justifier::new(&c, 11)
            .with_attempts(8)
            .with_backend(env_backend());
        let mut found = 0usize;
        for e in faults.iter() {
            if let Some(r) = j.justify(&e.assignments) {
                assert!(e.assignments.satisfied_by(&r.waves), "{}", e.fault);
                found += 1;
            }
        }
        // s27's robustly testable fault population is well over half the
        // candidates; exact counts are pinned by integration tests.
        assert!(found > faults.len() / 2, "found {found}/{}", faults.len());
    }

    #[test]
    fn merged_requirements_detect_both_faults() {
        let c = s27();
        let f1 = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let f2 = s27_fault(&[1, 8, 12, 25], Polarity::SlowToRise);
        let a1 = robust_assignments(&c, &f1).unwrap();
        let a2 = robust_assignments(&c, &f2).unwrap();
        if let Some(merged) = a1.merged(&a2) {
            let mut j = Justifier::new(&c, 5)
                .with_attempts(4)
                .with_backend(env_backend());
            if let Some(r) = j.justify(&merged) {
                assert!(a1.satisfied_by(&r.waves));
                assert!(a2.satisfied_by(&r.waves));
            }
        }
    }

    #[test]
    fn out_of_cone_inputs_are_randomized_but_test_complete() {
        let c = s27();
        // The fault on (3,15): cone involves inputs 2, 3, 7 only.
        let f = s27_fault(&[3, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let r = Justifier::new(&c, 9)
            .with_backend(env_backend())
            .justify(&a)
            .unwrap();
        assert!(r.test.is_fully_specified());
        assert_eq!(r.test.len(), 7);
    }

    #[test]
    fn exhausted_budget_fails_justification_without_drawing_rng() {
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let cancel = pdf_runctl::CancelToken::new();
        cancel.cancel();
        let mut j = Justifier::new(&c, 42)
            .with_backend(env_backend())
            .with_budget(RunBudget::unlimited().and_cancel(cancel));
        let before = j.rng_state();
        assert!(j.justify(&a).is_none());
        assert_eq!(j.stats().calls, 1);
        assert_eq!(
            j.rng_state(),
            before,
            "an entry-poll abort must not draw RNG"
        );
    }

    #[test]
    fn rng_state_round_trips_across_justifiers() {
        let c = s27();
        let f1 = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let f2 = s27_fault(&[1, 8, 12, 25], Polarity::SlowToRise);
        let a1 = robust_assignments(&c, &f1).unwrap();
        let a2 = robust_assignments(&c, &f2).unwrap();
        // One justifier runs both calls; a second is rebuilt mid-stream
        // from the first's snapshot and must produce the same second test.
        let mut full = Justifier::new(&c, 77).with_backend(env_backend());
        let _ = full.justify(&a1);
        let snapshot = full.rng_state();
        let t_full = full.justify(&a2).map(|r| r.test);
        let mut resumed = Justifier::new(&c, 0).with_backend(env_backend());
        resumed.set_rng_state(snapshot);
        let t_resumed = resumed.justify(&a2).map(|r| r.test);
        assert_eq!(t_full, t_resumed);
    }

    #[test]
    fn stats_accumulate() {
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let mut j = Justifier::new(&c, 1).with_backend(env_backend());
        let _ = j.justify(&a);
        let _ = j.justify(&a);
        assert_eq!(j.stats().calls, 2);
        assert!(j.stats().simulations > 0);
        assert_eq!(j.stats().cone_hits + j.stats().cone_misses, 2);
    }

    #[test]
    fn branch_guide_costs() {
        let guide = BranchGuide::new(vec![1, 5, 3], vec![2, 4, 3]);
        assert_eq!(guide.difficulty(LineId::new(0)), 2);
        assert_eq!(guide.difficulty(LineId::new(1)), 5);
        assert_eq!(guide.difficulty(LineId::new(9)), 0, "beyond the tables");
        assert_eq!(guide.easier_value(LineId::new(0)), Value::Zero);
        assert_eq!(guide.easier_value(LineId::new(1)), Value::One);
        assert_eq!(guide.easier_value(LineId::new(2)), Value::Zero, "tie → 0");

        let mut a = pdf_faults::Assignments::new();
        a.require(LineId::new(0), Triple::STABLE1).unwrap();
        a.require(LineId::new(1), Triple::RISING).unwrap();
        // STABLE1 on line 0 costs CC1 = 2; RISING's steady value on
        // line 1 costs CC1 = 4.
        assert_eq!(guide.assignment_cost(&a), 6);
    }

    #[test]
    #[should_panic(expected = "same lines")]
    fn branch_guide_rejects_mismatched_tables() {
        let _ = BranchGuide::new(vec![1], vec![1, 2]);
    }

    /// A uniform guide for a circuit (every line cost 1/1) — enough to
    /// flip the justifier onto the deterministic decision path.
    fn flat_guide(c: &Circuit) -> std::sync::Arc<BranchGuide> {
        std::sync::Arc::new(BranchGuide::new(
            vec![1; c.line_count()],
            vec![1; c.line_count()],
        ))
    }

    #[test]
    fn guide_leaves_completion_phase_witnesses_unchanged() {
        // The guide only replaces guided-search decisions; a call resolved
        // by a random-completion lane must return the same witness with
        // and without it.
        let c = s27();
        let f = s27_fault(&[2, 9, 10, 15], Polarity::SlowToRise);
        let a = robust_assignments(&c, &f).unwrap();
        let mut plain = Justifier::new(&c, 42).with_backend(env_backend());
        let mut guided = Justifier::new(&c, 42)
            .with_backend(env_backend())
            .with_guide(flat_guide(&c));
        let rp = plain.justify(&a).unwrap();
        let rg = guided.justify(&a).unwrap();
        assert_eq!(rp.test, rg.test);
        assert_eq!(guided.stats().scoap_guided_branches, 0, "lane hit");
    }

    /// z = AND of five 2-input XOR pairs: the necessary-value fixpoint
    /// assigns nothing (one XOR input alone never violates), and a
    /// satisfying completion is a ≈(1/4)^5 event per candidate, so a
    /// single 64-lane block almost surely misses and the guided decision
    /// search must run.
    fn sparse_parity_circuit() -> Circuit {
        let mut b = pdf_netlist::CircuitBuilder::new("sparse");
        let mut pairs = Vec::new();
        for k in 0..5 {
            let x = b.input(format!("x{k}"));
            let y = b.input(format!("y{k}"));
            pairs.push(b.gate(format!("p{k}"), pdf_logic::GateKind::Xor, &[x, y]));
        }
        let z = b.gate("z", pdf_logic::GateKind::And, &pairs);
        b.mark_output(z);
        b.finish().unwrap()
    }

    #[test]
    fn guide_drives_the_decision_search_deterministically() {
        let c = sparse_parity_circuit();
        let z = c.find_line("z").unwrap();
        let mut req = pdf_faults::Assignments::new();
        req.require(z, Triple::STABLE1).unwrap();
        let run = || {
            let mut j = Justifier::new(&c, 2002)
                .with_backend(env_backend())
                .with_guide(flat_guide(&c));
            let witness = j.justify(&req).map(|r| r.test);
            (witness, j.stats())
        };
        let (w1, s1) = run();
        let (w2, s2) = run();
        assert_eq!(w1, w2, "guided decisions must be deterministic");
        assert_eq!(s1, s2);
        assert!(
            s1.scoap_guided_branches > 0,
            "the sparse requirement must reach the guided decision search"
        );
        if let Some(test) = w1 {
            assert!(test.is_fully_specified());
        }
    }
}
