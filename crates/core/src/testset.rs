//! Test sets and robust fault simulation.
//!
//! A two-pattern test detects a path delay fault robustly **iff** its
//! simulated waveforms satisfy the fault's necessary assignment set
//! `A(p)` (paper Sec. 2.1) — so robust fault simulation reduces to one
//! hazard-conservative waveform simulation per test plus a requirement
//! check per fault.

use pdf_faults::FaultList;
use pdf_netlist::{Circuit, TwoPattern};
use pdf_runctl::RunBudget;
use pdf_sim::{SimBackend, SimOptions};

/// One test in the plain-text interchange line format (`v1 v2`), shared
/// by [`TestSet::to_text`] and the checkpoint writer.
pub(crate) fn test_line(test: &TwoPattern) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(2 * test.first().len() + 1);
    for v in test.first() {
        let _ = write!(s, "{v}");
    }
    s.push(' ');
    for v in test.second() {
        let _ = write!(s, "{v}");
    }
    s
}

/// An ordered collection of two-pattern tests.
///
/// # Example
///
/// ```
/// use pdf_atpg::{Justifier, TestSet};
/// use pdf_faults::FaultList;
/// use pdf_netlist::iscas::s27;
/// use pdf_paths::PathEnumerator;
///
/// let circuit = s27();
/// let paths = PathEnumerator::new(&circuit).enumerate();
/// let (faults, _) = FaultList::build(&circuit, &paths.store);
///
/// // One test for the first fault, then measure what else it catches.
/// let mut justifier = Justifier::new(&circuit, 1);
/// let justified = justifier.justify(&faults.entries()[0].assignments).unwrap();
/// let set = TestSet::from_tests(vec![justified.test]);
/// let coverage = set.coverage(&circuit, &faults);
/// assert!(coverage.detected_count() >= 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TestSet {
    tests: Vec<TwoPattern>,
}

impl TestSet {
    /// Creates an empty test set.
    #[must_use]
    pub fn new() -> TestSet {
        TestSet::default()
    }

    /// Creates a test set from tests.
    #[must_use]
    pub fn from_tests(tests: Vec<TwoPattern>) -> TestSet {
        TestSet { tests }
    }

    /// Appends a test.
    pub fn push(&mut self, test: TwoPattern) {
        self.tests.push(test);
    }

    /// Shortens the set to `len` tests, dropping the rest. No-op when the
    /// set is already that short — the generator uses this to roll a
    /// budget-truncated round back to its committed boundary.
    pub fn truncate(&mut self, len: usize) {
        self.tests.truncate(len);
    }

    /// Number of tests.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Returns `true` if the set holds no tests.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The tests, in generation order.
    #[inline]
    #[must_use]
    pub fn tests(&self) -> &[TwoPattern] {
        &self.tests
    }

    /// Simulates the whole set against a fault list with the default
    /// (packed, thread-parallel) backend.
    #[must_use]
    pub fn coverage(&self, circuit: &Circuit, faults: &FaultList) -> Coverage {
        self.coverage_with(SimBackend::default(), circuit, faults)
    }

    /// Simulates the whole set against a fault list with explicit
    /// simulation options (backend, tile width, event mode — a bare
    /// [`SimBackend`] converts). Every combination produces identical
    /// coverage; the scalar backend exists as a differential-testing
    /// oracle.
    #[must_use]
    pub fn coverage_with(
        &self,
        opts: impl Into<SimOptions>,
        circuit: &Circuit,
        faults: &FaultList,
    ) -> Coverage {
        Coverage {
            detected: pdf_sim::coverage_flags(opts, circuit, &self.tests, faults.entries()),
        }
    }
}

impl TestSet {
    /// Static compaction post-pass: the classic reverse-order sweep. Tests
    /// are visited newest-first; a test is kept only if it detects at
    /// least one fault no already-kept test detects. Complements the
    /// paper's *dynamic* compaction — late tests were generated for the
    /// hard leftover faults and tend to cover the easy early targets too.
    ///
    /// The returned set preserves generation order of the kept tests and
    /// detects exactly the same faults of `faults` as `self`.
    #[must_use]
    pub fn minimized(&self, circuit: &Circuit, faults: &FaultList) -> TestSet {
        self.minimized_with(SimBackend::default(), circuit, faults)
    }

    /// [`TestSet::minimized`] with explicit simulation options.
    #[must_use]
    pub fn minimized_with(
        &self,
        opts: impl Into<SimOptions>,
        circuit: &Circuit,
        faults: &FaultList,
    ) -> TestSet {
        let keep = self.kept_after_sweep(opts, circuit, faults);
        TestSet {
            tests: self
                .tests
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(t, _)| t.clone())
                .collect(),
        }
    }

    /// Consuming variant of [`TestSet::minimized`]: moves the kept tests
    /// out instead of cloning them. Preferred when the unminimized set is
    /// discarded anyway.
    #[must_use]
    pub fn into_minimized(self, circuit: &Circuit, faults: &FaultList) -> TestSet {
        self.into_minimized_with(SimBackend::default(), circuit, faults)
    }

    /// [`TestSet::into_minimized`] with explicit simulation options.
    #[must_use]
    pub fn into_minimized_with(
        self,
        opts: impl Into<SimOptions>,
        circuit: &Circuit,
        faults: &FaultList,
    ) -> TestSet {
        let keep = self.kept_after_sweep(opts, circuit, faults);
        TestSet {
            tests: self
                .tests
                .into_iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(t, _)| t)
                .collect(),
        }
    }

    /// [`TestSet::minimized_with`] under a cooperative run budget: when
    /// the budget is (or becomes) exhausted at the compaction boundary,
    /// the set is returned unminimized — a valid, merely uncompacted,
    /// result — instead of starting a sweep there is no time for.
    ///
    /// Returns the set and whether the budget cut the pass short. The
    /// budget is polled once on entry (the sweep itself is one bounded
    /// simulation pass, not an open-ended loop).
    #[must_use]
    pub fn minimized_within(
        &self,
        budget: &RunBudget,
        opts: impl Into<SimOptions>,
        circuit: &Circuit,
        faults: &FaultList,
    ) -> (TestSet, bool) {
        if budget.exhausted() {
            return (self.clone(), true);
        }
        (self.minimized_with(opts, circuit, faults), false)
    }

    /// The reverse-order sweep shared by the minimization entry points:
    /// which tests survive, as flags aligned with `self.tests`.
    fn kept_after_sweep(
        &self,
        opts: impl Into<SimOptions>,
        circuit: &Circuit,
        faults: &FaultList,
    ) -> Vec<bool> {
        let _phase = pdf_telemetry::Span::enter("compact");
        let per_test = pdf_sim::per_test_detections(opts, circuit, &self.tests, faults.entries());
        let mut covered = vec![false; faults.len()];
        let mut keep = vec![false; self.tests.len()];
        for (k, detections) in per_test.iter().enumerate().rev() {
            if detections.iter().any(|&i| !covered[i]) {
                keep[k] = true;
                for &i in detections {
                    covered[i] = true;
                }
            }
        }
        let dropped = keep.iter().filter(|&&k| !k).count();
        pdf_telemetry::count(pdf_telemetry::counters::TESTS_DROPPED, dropped as u64);
        keep
    }

    /// Serializes the set to the plain-text interchange format: one test
    /// per line, the two patterns separated by whitespace, `#` comments.
    ///
    /// ```text
    /// # path-delay-atpg test set v1
    /// 0011010 1000010
    /// 1100110 1100100
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::from("# path-delay-atpg test set v1\n");
        for t in &self.tests {
            s.push_str(&test_line(t));
            s.push('\n');
        }
        s
    }

    /// Parses the plain-text interchange format produced by
    /// [`TestSet::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseTestSetError`] on malformed lines, value characters
    /// outside `{0, 1, x}`, or inconsistent pattern widths.
    pub fn from_text(text: &str) -> Result<TestSet, ParseTestSetError> {
        let mut tests = Vec::new();
        let mut width = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(ParseTestSetError::Malformed { line: lineno });
            };
            let parse = |s: &str| -> Result<Vec<pdf_logic::Value>, ParseTestSetError> {
                s.chars()
                    .map(|c| {
                        pdf_logic::Value::try_from(c).map_err(|_| ParseTestSetError::BadValue {
                            line: lineno,
                            ch: c,
                        })
                    })
                    .collect()
            };
            let v1 = parse(a)?;
            let v2 = parse(b)?;
            if v1.len() != v2.len() || *width.get_or_insert(v1.len()) != v1.len() {
                return Err(ParseTestSetError::WidthMismatch { line: lineno });
            }
            tests.push(TwoPattern::new(v1, v2));
        }
        Ok(TestSet { tests })
    }
}

/// Error returned by [`TestSet::from_text`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseTestSetError {
    /// A line is not two whitespace-separated patterns.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A pattern contains a character outside `{0, 1, x}`.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending character.
        ch: char,
    },
    /// Pattern widths differ within a line or across lines.
    WidthMismatch {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseTestSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTestSetError::Malformed { line } => {
                write!(f, "line {line}: expected two whitespace-separated patterns")
            }
            ParseTestSetError::BadValue { line, ch } => {
                write!(f, "line {line}: invalid value character `{ch}`")
            }
            ParseTestSetError::WidthMismatch { line } => {
                write!(f, "line {line}: inconsistent pattern width")
            }
        }
    }
}

impl std::error::Error for ParseTestSetError {}

impl FromIterator<TwoPattern> for TestSet {
    fn from_iter<T: IntoIterator<Item = TwoPattern>>(iter: T) -> TestSet {
        TestSet {
            tests: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a TwoPattern;
    type IntoIter = std::slice::Iter<'a, TwoPattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.tests.iter()
    }
}

/// Which faults of a list a test set detects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    detected: Vec<bool>,
}

impl Coverage {
    /// Per-fault detection flags, aligned with the fault list.
    #[inline]
    #[must_use]
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Number of detected faults.
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|&&d| d).count()
    }

    /// Detection fraction over the fault list (0 for an empty list).
    #[must_use]
    pub fn fault_coverage(&self) -> f64 {
        if self.detected.is_empty() {
            0.0
        } else {
            self.detected_count() as f64 / self.detected.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Justifier;
    use pdf_netlist::iscas::s27;
    use pdf_paths::PathEnumerator;

    fn setup() -> (Circuit, FaultList) {
        let c = s27();
        let paths = PathEnumerator::new(&c).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        (c, faults)
    }

    #[test]
    fn empty_set_detects_nothing() {
        let (c, faults) = setup();
        let cov = TestSet::new().coverage(&c, &faults);
        assert_eq!(cov.detected_count(), 0);
        assert_eq!(cov.fault_coverage(), 0.0);
    }

    #[test]
    fn generated_test_detects_its_target() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 77).with_attempts(4);
        let mut set = TestSet::new();
        let mut targets = Vec::new();
        for (i, e) in faults.iter().enumerate().take(6) {
            if let Some(r) = j.justify(&e.assignments) {
                set.push(r.test);
                targets.push(i);
            }
        }
        assert!(!set.is_empty());
        let cov = set.coverage(&c, &faults);
        for i in targets {
            assert!(cov.detected()[i], "target fault {i} must be detected");
        }
    }

    #[test]
    fn minimization_preserves_coverage_and_shrinks() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 21).with_attempts(2);
        // Deliberately redundant: try a test for every single fault.
        let set: TestSet = faults
            .iter()
            .filter_map(|e| j.justify(&e.assignments))
            .map(|r| r.test)
            .collect();
        let min = set.minimized(&c, &faults);
        assert!(min.len() <= set.len());
        assert_eq!(
            min.coverage(&c, &faults).detected(),
            set.coverage(&c, &faults).detected(),
        );
        // Idempotent.
        let again = min.minimized(&c, &faults);
        assert_eq!(again.len(), min.len());
        // The one-fault-per-test construction is heavily redundant on s27.
        assert!(min.len() < set.len(), "{} vs {}", min.len(), set.len());
    }

    #[test]
    fn backends_agree_on_coverage_and_minimization() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 33).with_attempts(2);
        let set: TestSet = faults
            .iter()
            .filter_map(|e| j.justify(&e.assignments))
            .map(|r| r.test)
            .collect();
        let scalar = set.coverage_with(pdf_sim::SimBackend::Scalar, &c, &faults);
        let packed = set.coverage_with(pdf_sim::SimBackend::Packed, &c, &faults);
        assert_eq!(scalar, packed);
        let min_scalar = set.minimized_with(pdf_sim::SimBackend::Scalar, &c, &faults);
        let min_packed = set.minimized_with(pdf_sim::SimBackend::Packed, &c, &faults);
        assert_eq!(min_scalar.tests(), min_packed.tests());
    }

    #[test]
    fn into_minimized_matches_minimized() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 13).with_attempts(2);
        let set: TestSet = faults
            .iter()
            .filter_map(|e| j.justify(&e.assignments))
            .map(|r| r.test)
            .collect();
        let by_ref = set.minimized(&c, &faults);
        let by_move = set.into_minimized(&c, &faults);
        assert_eq!(by_ref.tests(), by_move.tests());
    }

    #[test]
    fn minimization_of_empty_set_is_empty() {
        let (c, faults) = setup();
        assert!(TestSet::new().minimized(&c, &faults).is_empty());
    }

    #[test]
    fn text_round_trip() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 9).with_attempts(4);
        let set: TestSet = faults
            .iter()
            .take(8)
            .filter_map(|e| j.justify(&e.assignments))
            .map(|r| r.test)
            .collect();
        assert!(!set.is_empty());
        let text = set.to_text();
        let parsed = TestSet::from_text(&text).unwrap();
        assert_eq!(parsed.len(), set.len());
        for (a, b) in parsed.tests().iter().zip(set.tests()) {
            assert_eq!(a, b);
        }
        // Coverage is preserved byte-for-byte.
        assert_eq!(
            parsed.coverage(&c, &faults).detected_count(),
            set.coverage(&c, &faults).detected_count()
        );
    }

    #[test]
    fn text_parse_errors() {
        assert!(matches!(
            TestSet::from_text("0101\n"),
            Err(ParseTestSetError::Malformed { line: 1 })
        ));
        assert!(matches!(
            TestSet::from_text("01 02\n"),
            Err(ParseTestSetError::BadValue { line: 1, ch: '2' })
        ));
        assert!(matches!(
            TestSet::from_text("01 011\n"),
            Err(ParseTestSetError::WidthMismatch { line: 1 })
        ));
        assert!(matches!(
            TestSet::from_text("01 01\n011 010\n"),
            Err(ParseTestSetError::WidthMismatch { line: 2 })
        ));
        // Comments, blanks, and x values are fine.
        let ok = TestSet::from_text("# hi\n\n0x1 1x0  # trailing\n").unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn budgeted_minimization_degrades_to_identity_when_exhausted() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 21).with_attempts(2);
        let set: TestSet = faults
            .iter()
            .filter_map(|e| j.justify(&e.assignments))
            .map(|r| r.test)
            .collect();
        let spent =
            RunBudget::unlimited().and_cancel(pdf_runctl::CancelToken::cancel_after_polls(1));
        let (kept, cut_short) = set.minimized_within(&spent, SimBackend::default(), &c, &faults);
        assert!(cut_short);
        assert_eq!(
            kept.tests(),
            set.tests(),
            "exhausted budget skips the sweep"
        );
        let (min, cut_short) =
            set.minimized_within(&RunBudget::unlimited(), SimBackend::default(), &c, &faults);
        assert!(!cut_short);
        assert_eq!(min.tests(), set.minimized(&c, &faults).tests());
    }

    #[test]
    fn coverage_is_monotone_in_tests() {
        let (c, faults) = setup();
        let mut j = Justifier::new(&c, 5).with_attempts(4);
        let mut tests = Vec::new();
        for e in faults.iter().take(10) {
            if let Some(r) = j.justify(&e.assignments) {
                tests.push(r.test);
            }
        }
        let mut prev = 0usize;
        for k in 0..=tests.len() {
            let set = TestSet::from_tests(tests[..k].to_vec());
            let count = set.coverage(&c, &faults).detected_count();
            assert!(count >= prev);
            prev = count;
        }
    }
}
