//! Differential oracle for the justifier's two completion engines: for
//! equal seeds the packed bit-plane kernel and the scalar per-lane loop
//! must agree on justifiability (Some/None) for every fault, and every
//! packed witness must pass the scalar requirement re-check.

use proptest::prelude::*;

use pdf_atpg::Justifier;
use pdf_faults::FaultList;
use pdf_netlist::{Circuit, SynthProfile};
use pdf_paths::PathEnumerator;
use pdf_sim::SimBackend;

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (3usize..8, 10usize..60, 3usize..8, any::<u64>()).prop_map(|(inputs, gates, levels, seed)| {
        SynthProfile::new("diff", seed)
            .with_inputs(inputs)
            .with_gates(gates)
            .with_levels(levels)
            .generate()
            .to_circuit()
            .expect("generated netlists are valid")
    })
}

/// Justifies every detectable fault of `c` under both backends with the
/// same seed and cross-checks the outcomes.
fn check_backends_agree(c: &Circuit, seed: u64, attempts: u32) {
    let paths = PathEnumerator::new(c).with_cap(300).enumerate();
    let (faults, _) = FaultList::build(c, &paths.store);
    let mut scalar = Justifier::new(c, seed)
        .with_attempts(attempts)
        .with_backend(SimBackend::Scalar);
    let mut packed = Justifier::new(c, seed)
        .with_attempts(attempts)
        .with_backend(SimBackend::Packed);
    for entry in faults.iter() {
        let s = scalar.justify(&entry.assignments);
        let p = packed.justify(&entry.assignments);
        assert_eq!(
            s.is_some(),
            p.is_some(),
            "backends disagree on {} (seed {seed})",
            entry.fault
        );
        if let Some(p) = p {
            // The packed witness must pass the scalar re-check: the
            // full-circuit waveforms neither violate nor miss any
            // requirement.
            assert!(
                !entry.assignments.violated_by(&p.waves),
                "packed witness violates {} (seed {seed})",
                entry.fault
            );
            assert!(
                entry.assignments.satisfied_by(&p.waves),
                "packed witness does not satisfy {} (seed {seed})",
                entry.fault
            );
            assert_eq!(
                s.unwrap().test,
                p.test,
                "witness mismatch on {} (seed {seed})",
                entry.fault
            );
        }
    }
    assert_eq!(scalar.stats().successes, packed.stats().successes);
}

#[test]
fn backends_agree_on_s27_across_seeds() {
    let c = pdf_netlist::iscas::s27();
    for seed in [1, 2, 7, 2002, 0xDEAD_BEEF] {
        check_backends_agree(&c, seed, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backends_agree_on_synth_circuits(c in arb_circuit(), seed in any::<u64>()) {
        check_backends_agree(&c, seed, 1);
    }
}
