//! Differential oracle for the justifier's completion engines: for equal
//! seeds the scalar per-lane loop and the packed bit-plane kernel — at
//! every tile width (64/256/512 lanes), with event-driven propagation on
//! or off — must return byte-identical witnesses for every fault, and
//! every packed witness must pass the scalar requirement re-check.

use proptest::prelude::*;

use pdf_atpg::Justifier;
use pdf_faults::FaultList;
use pdf_netlist::{Circuit, SynthProfile, TwoPattern};
use pdf_paths::PathEnumerator;
use pdf_sim::{SimBackend, SimOptions, SimWidth};

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    // `redundant` injects the `+r` stand-in redundancy gadgets, giving the
    // justifier a population of unjustifiable requirement sets too.
    (3usize..8, 10usize..60, 3usize..8, 0usize..3, any::<u64>()).prop_map(
        |(inputs, gates, levels, redundant, seed)| {
            SynthProfile::new("diff", seed)
                .with_inputs(inputs)
                .with_gates(gates)
                .with_levels(levels)
                .with_redundant_gadgets(redundant)
                .generate()
                .to_circuit()
                .expect("generated netlists are valid")
        },
    )
}

/// Every backend × width × event-mode combination the justifier offers.
fn all_option_blocks() -> Vec<SimOptions> {
    let mut blocks = vec![SimOptions::default().with_backend(SimBackend::Scalar)];
    for width in SimWidth::ALL {
        for events in [true, false] {
            blocks.push(SimOptions::default().with_width(width).with_events(events));
        }
    }
    blocks
}

/// Justifies every detectable fault of `c` under every option block with
/// the same seed and cross-checks witnesses, stats and cone counters.
fn check_engines_agree(c: &Circuit, seed: u64, attempts: u32) {
    let paths = PathEnumerator::new(c).with_cap(300).enumerate();
    let (faults, _) = FaultList::build(c, &paths.store);
    let blocks = all_option_blocks();
    let mut engines: Vec<Justifier> = blocks
        .iter()
        .map(|&opts| {
            Justifier::new(c, seed)
                .with_attempts(attempts)
                .with_options(opts)
        })
        .collect();
    for entry in faults.iter() {
        let results: Vec<Option<pdf_atpg::Justified>> = engines
            .iter_mut()
            .map(|j| j.justify(&entry.assignments))
            .collect();
        let (oracle, rest) = results.split_first().expect("scalar oracle first");
        for (r, opts) in rest.iter().zip(&blocks[1..]) {
            assert_eq!(
                oracle.is_some(),
                r.is_some(),
                "{opts:?} disagrees on {} (seed {seed})",
                entry.fault
            );
            if let (Some(s), Some(p)) = (oracle, r) {
                // Byte-identical witnesses, and every packed witness
                // passes the scalar re-check: the full-circuit waveforms
                // neither violate nor miss any requirement.
                assert_eq!(
                    s.test, p.test,
                    "witness mismatch under {opts:?} on {} (seed {seed})",
                    entry.fault
                );
                assert!(
                    !entry.assignments.violated_by(&p.waves),
                    "witness violates {} under {opts:?} (seed {seed})",
                    entry.fault
                );
                assert!(
                    entry.assignments.satisfied_by(&p.waves),
                    "witness does not satisfy {} under {opts:?} (seed {seed})",
                    entry.fault
                );
            }
        }
    }
    let oracle_stats = engines[0].stats();
    for (j, opts) in engines.iter().zip(&blocks) {
        let stats = j.stats();
        assert_eq!(oracle_stats.successes, stats.successes, "{opts:?}");
        assert_eq!(oracle_stats.conflicts, stats.conflicts, "{opts:?}");
        assert_eq!(oracle_stats.lane_hits, stats.lane_hits, "{opts:?}");
        // The cone-topology LRU sits above the completion engine, so its
        // hit/miss counters must be width- and event-independent.
        assert_eq!(oracle_stats.cone_hits, stats.cone_hits, "{opts:?}");
        assert_eq!(oracle_stats.cone_misses, stats.cone_misses, "{opts:?}");
    }
}

#[test]
fn engines_agree_on_s27_across_seeds() {
    let c = pdf_netlist::iscas::s27();
    for seed in [1, 2, 7, 2002, 0xDEAD_BEEF] {
        check_engines_agree(&c, seed, 2);
    }
}

#[test]
fn engines_agree_on_a_redundant_stand_in() {
    // A `+r` profile: redundancy gadgets make part of the fault
    // population unjustifiable, exercising the Miss path of every engine.
    let c = pdf_netlist::stand_in_profile("b03+r")
        .expect("known stand-in")
        .generate()
        .to_circuit()
        .expect("combinational");
    check_engines_agree(&c, 2002, 1);
}

#[test]
fn wide_event_driven_generation_matches_the_default_width() {
    // End-to-end: a whole enrichment run produces identical test sets at
    // every width × event mode, because the justifier's witnesses are.
    let c = pdf_netlist::stand_in_profile("b09")
        .expect("known stand-in")
        .generate()
        .to_circuit()
        .expect("combinational");
    let paths = PathEnumerator::new(&c).with_cap(400).enumerate();
    let (faults, _) = FaultList::build(&c, &paths.store);
    let split = pdf_atpg::TargetSplit::by_cumulative_length(&faults, faults.len() / 4);
    let run = |opts: SimOptions| {
        pdf_atpg::EnrichmentAtpg::new(&c)
            .with_config(pdf_atpg::AtpgConfig {
                sim: opts,
                ..pdf_atpg::AtpgConfig::default()
            })
            .run(&split)
    };
    let baseline: Vec<TwoPattern> = run(SimOptions::default().with_width(SimWidth::W64))
        .tests()
        .tests()
        .to_vec();
    for opts in all_option_blocks() {
        let outcome = run(opts);
        assert_eq!(outcome.tests().tests(), &baseline[..], "{opts:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_synth_circuits(c in arb_circuit(), seed in any::<u64>()) {
        check_engines_agree(&c, seed, 1);
    }
}
