//! Differential oracle for the parallel generation pool: for any thread
//! count (2/4/8) and any steal schedule (the forced-steal instrument
//! inverts every worker's deque preference) a pooled run must be
//! byte-identical to the single-threaded reference — the test set, the
//! per-fault verdict flags, the telemetry counter totals and the
//! checkpoint files — including runs cut short by an exhausted budget
//! and runs with quarantined (panicking) faults.

use std::sync::{Mutex, PoisonError};

use proptest::prelude::*;

use pdf_atpg::{
    AtpgConfig, AtpgOutcome, BasicAtpg, CancelToken, CheckpointPolicy, Compaction, EnrichmentAtpg,
    RunBudget, TargetSplit,
};
use pdf_faults::{FaultEntry, FaultList};
use pdf_netlist::{Circuit, LineId, SynthProfile};
use pdf_paths::PathEnumerator;
use pdf_sim::SimOptions;

/// Telemetry counters are process-global; tests that record them
/// serialize here so a neighbor's counts never bleed into a delta.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// The pooled configurations under test: every thread count with the
/// natural schedule and with every claim forced onto a victim's deque.
const POOLED: [(usize, bool); 6] = [
    (2, false),
    (2, true),
    (4, false),
    (4, true),
    (8, false),
    (8, true),
];

fn config(threads: usize, force_steal: bool) -> AtpgConfig {
    AtpgConfig {
        sim: SimOptions::from_env().unwrap_or_else(|e| panic!("{e}")),
        threads,
        force_steal,
        ..AtpgConfig::default()
    }
}

fn assert_outcomes_identical(reference: &AtpgOutcome, pooled: &AtpgOutcome, label: &str) {
    assert_eq!(
        reference.tests().to_text(),
        pooled.tests().to_text(),
        "{label}: test set diverged"
    );
    assert_eq!(reference.detected(), pooled.detected(), "{label}: detected");
    assert_eq!(reference.aborted(), pooled.aborted(), "{label}: aborted");
    assert_eq!(
        reference.quarantined(),
        pooled.quarantined(),
        "{label}: quarantined"
    );
    assert_eq!(
        reference.budget_exhausted(),
        pooled.budget_exhausted(),
        "{label}: budget_exhausted"
    );
    let (r, p) = (reference.stats(), pooled.stats());
    assert_eq!(r.aborted_primaries, p.aborted_primaries, "{label}");
    assert_eq!(r.secondary_accepts, p.secondary_accepts, "{label}");
    assert_eq!(r.free_accepts, p.free_accepts, "{label}");
    assert_eq!(r.secondary_rejects, p.secondary_rejects, "{label}");
    assert_eq!(r.conflict_rejects, p.conflict_rejects, "{label}");
    assert_eq!(r.faults_quarantined, p.faults_quarantined, "{label}");
    assert_eq!(r.builds_discarded, p.builds_discarded, "{label}");
    assert_eq!(r.justify, p.justify, "{label}: justify counters");
}

fn faults_of(c: &Circuit, cap: usize) -> FaultList {
    let paths = PathEnumerator::new(c).with_cap(cap).enumerate();
    FaultList::build(c, &paths.store).0
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (3usize..8, 10usize..50, 3usize..7, 0usize..3, any::<u64>()).prop_map(
        |(inputs, gates, levels, redundant, seed)| {
            SynthProfile::new("pool", seed)
                .with_inputs(inputs)
                .with_gates(gates)
                .with_levels(levels)
                .with_redundant_gadgets(redundant)
                .generate()
                .to_circuit()
                .expect("generated netlists are valid")
        },
    )
}

/// Replaces `slot`'s requirements with an out-of-circuit line so every
/// engine that touches the fault panics (and quarantines it).
fn poison(faults: &FaultList, slot: usize) -> FaultList {
    let mut entries: Vec<FaultEntry> = faults.iter().cloned().collect();
    let mut bad = pdf_faults::Assignments::new();
    bad.require(LineId::new(9_999), pdf_logic::Triple::RISING)
        .unwrap();
    entries[slot].assignments = bad;
    entries.into_iter().collect()
}

#[test]
fn enrichment_runs_are_identical_at_every_thread_count() {
    let c = pdf_netlist::stand_in_profile("b09")
        .expect("known stand-in")
        .generate()
        .to_circuit()
        .expect("combinational");
    let faults = faults_of(&c, 400);
    let split = TargetSplit::by_cumulative_length(&faults, faults.len() / 4);
    let run = |threads, force_steal| {
        EnrichmentAtpg::new(&c)
            .with_config(config(threads, force_steal))
            .run(&split)
    };
    let reference = run(1, false);
    for (threads, force_steal) in POOLED {
        let pooled = run(threads, force_steal);
        assert_outcomes_identical(
            &reference,
            &pooled,
            &format!("{threads} threads, force_steal={force_steal}"),
        );
    }
}

#[test]
fn checkpoint_files_are_byte_identical_across_thread_counts() {
    let (c, faults) = {
        let c = pdf_netlist::iscas::s27();
        let faults = faults_of(&c, 300);
        (c, faults)
    };
    let path_for = |tag: &str| {
        std::env::temp_dir().join(format!("pdf_pool_diff_{tag}_{}.json", std::process::id()))
    };
    let run = |threads: usize, force_steal: bool, tag: &str| {
        let path = path_for(tag);
        let outcome = BasicAtpg::new(&c)
            .with_config(AtpgConfig {
                checkpoint: Some(CheckpointPolicy::new(&path, 1)),
                ..config(threads, force_steal)
            })
            .run(&faults);
        let bytes = std::fs::read(&path).expect("checkpoint written");
        let _ = std::fs::remove_file(&path);
        (outcome, bytes)
    };
    let (reference, reference_bytes) = run(1, false, "serial");
    for (threads, force_steal) in POOLED {
        let tag = format!("t{threads}_{force_steal}");
        let (pooled, bytes) = run(threads, force_steal, &tag);
        assert_outcomes_identical(&reference, &pooled, &tag);
        assert_eq!(
            reference_bytes, bytes,
            "{tag}: final checkpoint file diverged"
        );
    }
}

#[test]
fn telemetry_counter_totals_are_schedule_independent() {
    let _guard = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let c = pdf_netlist::iscas::s27();
    let faults = faults_of(&c, 300);
    let counters_of = |threads, force_steal| {
        let _ = pdf_telemetry::begin_recording();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(threads, force_steal))
            .run(&faults);
        let report = pdf_telemetry::report();
        pdf_telemetry::disable();
        pdf_telemetry::reset();
        let counters: Vec<(String, u64)> = report
            .counters
            .iter()
            // The steal count is the one deliberately schedule-dependent
            // diagnostic; everything else must be exact.
            .filter(|(name, _)| name != "pool_steals")
            .cloned()
            .collect();
        (outcome, counters)
    };
    let (reference, reference_counters) = counters_of(1, false);
    for (threads, force_steal) in POOLED {
        let label = format!("{threads} threads, force_steal={force_steal}");
        let (pooled, counters) = counters_of(threads, force_steal);
        assert_outcomes_identical(&reference, &pooled, &label);
        assert_eq!(reference_counters, counters, "{label}: counter totals");
    }
}

#[test]
fn budget_exhausted_partial_prefixes_match_serial() {
    let c = pdf_netlist::iscas::s27();
    let faults = faults_of(&c, 300);
    for polls in [1, 2, 5, 13] {
        let run = |threads, force_steal| {
            BasicAtpg::new(&c)
                .with_config(AtpgConfig {
                    budget: RunBudget::unlimited()
                        .and_cancel(CancelToken::cancel_after_polls(polls)),
                    ..config(threads, force_steal)
                })
                .run(&faults)
        };
        let reference = run(1, false);
        assert!(reference.budget_exhausted(), "polls={polls} must cut");
        for (threads, force_steal) in POOLED {
            let pooled = run(threads, force_steal);
            assert_outcomes_identical(
                &reference,
                &pooled,
                &format!("polls={polls}, {threads} threads, force_steal={force_steal}"),
            );
        }
    }
}

#[test]
fn quarantined_fault_runs_match_serial() {
    let c = pdf_netlist::iscas::s27();
    let faults = faults_of(&c, 300);
    // Poison the first primary and a mid-population secondary: both the
    // justification guard and the sweep guard fire under the pool.
    for slot in [0, faults.len() / 2] {
        let poisoned = poison(&faults, slot);
        let run = |threads, force_steal| {
            BasicAtpg::new(&c)
                .with_config(config(threads, force_steal))
                .run(&poisoned)
        };
        let reference = run(1, false);
        assert!(reference.quarantined()[slot], "slot {slot}");
        assert_eq!(reference.stats().faults_quarantined, 1);
        for (threads, force_steal) in POOLED {
            let pooled = run(threads, force_steal);
            assert_outcomes_identical(
                &reference,
                &pooled,
                &format!("slot={slot}, {threads} threads, force_steal={force_steal}"),
            );
        }
    }
}

/// Satellite: a `pool.build:panic@N` failpoint — keyed by fault index,
/// so the schedule never decides whether it fires — must quarantine the
/// same fault and leave identical counter totals at 1/2/4/8 threads.
#[test]
fn injected_pool_panic_quarantines_the_same_fault_at_every_thread_count() {
    let _guard = TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let c = pdf_netlist::iscas::s27();
    let faults = faults_of(&c, 300);
    // Not every fault reaches justification — many fall to an earlier
    // test's simulation sweep first, and a failpoint on a swept fault
    // never fires. Probe serially for the first index (>= 1, the keyed
    // grammar's floor) whose justification actually runs.
    let slot = (1..faults.len())
        .find(|&s| {
            let spec = pdf_chaos::FailpointSpec::parse(&format!("pool.build:panic@{s}")).unwrap();
            pdf_chaos::install(&spec);
            let outcome = BasicAtpg::new(&c)
                .with_config(config(1, false))
                .run(&faults);
            pdf_chaos::clear();
            outcome.quarantined()[s]
        })
        .expect("some fault must reach justification");
    let spec = pdf_chaos::FailpointSpec::parse(&format!("pool.build:panic@{slot}")).unwrap();
    let run_counters = |threads, force_steal| {
        pdf_chaos::install(&spec);
        let _ = pdf_telemetry::begin_recording();
        let outcome = BasicAtpg::new(&c)
            .with_config(config(threads, force_steal))
            .run(&faults);
        let report = pdf_telemetry::report();
        pdf_telemetry::disable();
        pdf_telemetry::reset();
        pdf_chaos::clear();
        let counters: Vec<(String, u64)> = report
            .counters
            .iter()
            .filter(|(name, _)| name != "pool_steals")
            .cloned()
            .collect();
        (outcome, counters)
    };
    let (reference, reference_counters) = run_counters(1, false);
    assert!(reference.quarantined()[slot], "slot {slot}");
    assert_eq!(reference.stats().faults_quarantined, 1);
    let hits = reference_counters
        .iter()
        .find(|(name, _)| name == pdf_telemetry::counters::FAILPOINTS_HIT)
        .map(|(_, v)| *v);
    assert!(
        hits.is_some_and(|v| v >= 1),
        "the failpoint must fire: {reference_counters:?}"
    );
    for (threads, force_steal) in POOLED {
        let label = format!("{threads} threads, force_steal={force_steal}");
        let (pooled, counters) = run_counters(threads, force_steal);
        assert_outcomes_identical(&reference, &pooled, &label);
        assert_eq!(reference_counters, counters, "{label}: counter totals");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pooled_generation_matches_serial_on_synth_circuits(
        c in arb_circuit(),
        seed in any::<u64>(),
    ) {
        let compaction = [
            Compaction::Uncompacted,
            Compaction::ValueBased,
            Compaction::LengthBased,
        ][(seed % 3) as usize];
        let faults = faults_of(&c, 200);
        prop_assume!(!faults.is_empty());
        let run = |threads, force_steal| {
            BasicAtpg::new(&c)
                .with_config(AtpgConfig {
                    seed,
                    compaction,
                    ..config(threads, force_steal)
                })
                .run(&faults)
        };
        let reference = run(1, false);
        for (threads, force_steal) in [(2, true), (4, true), (8, false)] {
            let pooled = run(threads, force_steal);
            assert_outcomes_identical(
                &reference,
                &pooled,
                &format!("seed={seed}, {threads} threads, force_steal={force_steal}"),
            );
        }
    }
}
