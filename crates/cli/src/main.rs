//! `pdfatpg` — command-line front end; see `pdf_cli::USAGE`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pdf_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
