//! Implementation of the `pdfatpg` command-line tool.
//!
//! The binary front-end (`main.rs`) is a thin wrapper; all commands live
//! here and return their output as strings, which keeps them directly
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use pdf_analyze::{
    classify_store, constant_lines, lint_semantic, Diagnostic, LintMode, LintReport,
    SensitizeAnalysis, Testability,
};
use pdf_atpg::{
    AtpgConfig, BasicAtpg, BranchGuide, BudgetSpec, Checkpoint, CheckpointPolicy, Compaction,
    EnrichmentAtpg, RunBudget, TargetSplit,
};
use pdf_faults::{FaultList, LearnedImplications};
use pdf_logic::Value;
use pdf_netlist::{Circuit, LineKind, Netlist, TwoPattern};
use pdf_paths::{PathEnumerator, PathSpectrum, PathStore, Strategy};
use pdf_telemetry::Json;

/// The command-line usage text.
pub const USAGE: &str = "\
pdfatpg — path delay fault analysis and test enrichment
         (Pomeranz & Reddy, DATE 2002)

USAGE:
    pdfatpg <COMMAND> <CIRCUIT> [OPTIONS]

CIRCUIT:
    a .bench file path, `s27`, `c17`, or a benchmark stand-in name
    (s641, s953, s1196, s1423, s1488, b03, b04, b09, s1423*, s5378*, s9234*)

COMMANDS:
    info      <circuit>              structural summary
    lint      <circuit>              structural and semantic diagnostics
                                     (PDLxxx codes); exits 3 when errors
                                     are found
    analyze   <circuit> [--cap N] [--static-learning]
                                     JSON testability report: exact path
                                     spectrum, SCOAP difficulty, per-path
                                     sensitizability classification
                                     (false / robust / unknown), constant
                                     lines and semantic lint counts
    spectrum  <circuit> [--top N]    exact path counts per length (no enumeration)
    paths     <circuit> [--cap N] [--units N] [--strategy moderate|distance]
                                     enumerate the longest paths
    faults    <circuit> [--cap N] [--limit N] [--static-learning] [--sensitize]
                                     the detectable fault population and A(p) sets
    atpg      <circuit> [--cap N] [--np0 N] [--heuristic uncomp|arbit|length|values]
                        [--seed S] [--attempts N] [--cone-cache N] [--enrich]
                        [--minimize] [--output FILE] [--telemetry FILE]
                        [--time-budget SPEC] [--checkpoint FILE]
                        [--checkpoint-every K] [--resume FILE] [--static-learning]
                        [--sensitize] [--scoap]
                        [--sim-width 64|256|512|auto] [--sim-events on|off]
                        [--threads N] [--failpoints SPEC]
                                     generate a (optionally enriched) robust test
                                     set; exits 5 when --resume finds only
                                     corrupt checkpoint generations
    matrix    [--cells N] [--circuits a,b] [--seeds s1,s2] [--full]
              [--report FILE] [--repro-dir DIR] [--replay FILE]
                                     cross-configuration invariant matrix
                                     (no circuit argument); exits 4 when
                                     violations are found, auto-minimizing
                                     each into a repro artifact
    sim       <circuit> <v1> <v2>    two-pattern waveform simulation (patterns over {0,1,x})
    dot       <circuit>              Graphviz export
    bench     <circuit>              emit the netlist as .bench text

ENVIRONMENT:
    PDF_SIM_BACKEND       `scalar` or `packed` (default); anything else aborts
    PDF_SIM_WIDTH         packed tile width in lanes: `64`, `256`, `512` or
                          `auto` (default: widest the CPU supports); results
                          are identical at every width (--sim-width overrides)
    PDF_SIM_EVENTS        `on` (default) or `off`: event-driven propagation
                          in the packed kernel — skip lines whose fanins did
                          not change (--sim-events overrides)
    PDF_SIM_THREADS       worker-thread count for fault-simulation fan-outs
                          (default: all available cores)
    PDF_THREADS           worker-thread count for atpg test generation
                          (default 1; --threads overrides); the test set,
                          counters and checkpoints are byte-identical at
                          every thread count
    PDF_LINT              `deny` (default), `warn`, or `off`: whether the
                          automatic structural lint after circuit loading
                          aborts on errors, prints them, or is skipped
    PDF_STATIC_LEARNING   `1`/`on` enables static implication learning for
                          the faults and atpg commands (same as
                          --static-learning; default off — outputs are
                          byte-identical to runs without the feature)
    PDF_SENSITIZE         `1`/`on` enables the static sensitizability pass
                          for the faults and atpg commands: provably
                          unsensitizable (false) path faults are
                          pre-eliminated before generation, and the
                          semantic lints (PDL008+) join the automatic
                          preflight (same as --sensitize; default off —
                          outputs are byte-identical to runs without it)
    PDF_SCOAP             `1`/`on` enables SCOAP testability guidance for
                          atpg: branch decisions target the hardest open
                          input first and primary targets are ordered
                          hardest-first (same as --scoap; default off;
                          the run stays deterministic and the config
                          fingerprint records the mode)
    PDF_TELEMETRY         path of a JSON run report written at exit
                          (--telemetry overrides it for the atpg command)
    PDF_TIME_BUDGET       wall-clock budget for atpg, e.g. `30s` or
                          `global=60s,compact=5s` (--time-budget overrides);
                          on exhaustion the partial test set is finalized
                          and `budget_exhausted: true` is reported
    PDF_CHECKPOINT        checkpoint file for atpg (--checkpoint overrides)
    PDF_CHECKPOINT_EVERY  checkpoint after every K completed primary
                          targets (default 16; --checkpoint-every overrides)
    PDF_FAILPOINTS        deterministic fault injection, a comma-separated
                          `site:kind@N` list (--failpoints overrides), e.g.
                          `checkpoint.write:torn@2,netlist.read:io@1`;
                          sites: checkpoint.write, checkpoint.read,
                          telemetry.flush, netlist.read, pool.build —
                          kinds: io (transient), full (persistent),
                          torn (silent truncation), panic
    PDF_IO_RETRY          bounded retry for transient I/O errors, as
                          `attempts[@backoff]` (default `3@1ms`, backoff
                          doubles per attempt), e.g. `5@2ms`
    PDF_MATRIX_CELLS      matrix cell budget (default 200; --cells overrides)
    PDF_MATRIX_CIRCUITS   comma-separated circuit list for matrix
                          (--circuits overrides)
    PDF_MATRIX_SEEDS      comma-separated seed list for matrix
                          (--seeds overrides)
    PDF_MATRIX_FULL       `on` selects the full nightly axes (--full
                          overrides; default: bounded smoke axes)
    PDF_MATRIX_REPORT     path of the matrix report JSON (--report overrides)
    PDF_MATRIX_REPRO_DIR  directory minimized repro artifacts are written
                          to (--repro-dir overrides)

Sequential netlists are reduced to their combinational core; XOR/XNOR
gates are decomposed before path analysis. Both transformations print a
notice to stderr.
";

/// Exit status for operational errors (bad usage, unreadable files,
/// failed runs).
pub const EXIT_ERROR: i32 = 2;

/// Exit status when linting finds error-severity diagnostics.
pub const EXIT_LINT: i32 = 3;

/// Exit status when the configuration matrix finds invariant violations
/// (or a replayed repro artifact still reproduces).
pub const EXIT_MATRIX: i32 = 4;

/// Exit status when `--resume` finds only corrupt checkpoint
/// generations (typed [`pdf_atpg::CheckpointError::Corrupt`]).
pub const EXIT_CORRUPT: i32 = 5;

/// A fatal command error: a message for stderr plus the process exit
/// status the binary should return.
#[derive(Debug)]
pub struct CliError {
    /// The message printed to stderr.
    pub message: String,
    /// The process exit status ([`EXIT_ERROR`] unless stated otherwise).
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: EXIT_ERROR,
        }
    }

    fn lint(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: EXIT_LINT,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> CliError {
        CliError::new(s)
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::new(message))
}

/// Simple option parser: `--key value` pairs plus positionals.
#[derive(Debug, Default)]
pub struct Options {
    positionals: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Options {
    /// Parses `args` (without the command itself). Options named in
    /// `value_flags` consume a value; all other `--flags` are boolean.
    pub fn parse(
        args: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Options, CliError> {
        let mut out = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let Some(value) = it.next() else {
                        return err(format!("--{name} requires a value"));
                    };
                    out.flags.push((name.to_owned(), Some(value.clone())));
                } else if bool_flags.contains(&name) {
                    out.flags.push((name.to_owned(), None));
                } else {
                    return err(format!("unknown option --{name}"));
                }
            } else {
                out.positionals.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The positional arguments.
    #[must_use]
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The value of `--name`, if present.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether boolean `--name` was given.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, v)| n == name && v.is_none())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("invalid value for --{name}: `{v}`"))),
        }
    }
}

/// Resolves a circuit spec to its raw netlist. `s27`/`c17` come from the
/// embedded ISCAS sources, stand-in names from the synthetic generator,
/// anything else is parsed as a `.bench` file with typed `PDLxxx`
/// diagnostics on failure.
fn resolve_netlist(spec: &str) -> Result<Netlist, CliError> {
    let (text, name): (std::borrow::Cow<'_, str>, &str) = if spec == "s27" {
        (pdf_netlist::iscas::S27_BENCH.into(), "s27")
    } else if spec == "c17" {
        (pdf_netlist::iscas::C17_BENCH.into(), "c17")
    } else if let Some(profile) = pdf_netlist::stand_in_profile(spec) {
        return Ok(profile.generate());
    } else {
        let text = read_netlist_text(spec)
            .map_err(|e| CliError::new(format!("cannot read `{spec}`: {e}")))?;
        let name = std::path::Path::new(spec)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("circuit")
            .to_owned();
        let netlist = pdf_netlist::parse_bench(&text, &name)
            .map_err(|e| CliError::lint(Diagnostic::from_bench_error(spec, &e).to_string()))?;
        return Ok(netlist);
    };
    pdf_netlist::parse_bench(&text, name)
        .map_err(|e| CliError::new(format!("embedded {name} netlist: {e}")))
}

/// `fs::read_to_string` behind the `netlist.read` failpoint site, with
/// transient errors retried under the `PDF_IO_RETRY` policy.
fn read_netlist_text(spec: &str) -> std::io::Result<String> {
    let policy = pdf_chaos::RetryPolicy::from_env()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let (result, retries) = pdf_chaos::with_retry(&policy, || {
        match pdf_chaos::evaluate(pdf_chaos::sites::NETLIST_READ) {
            Some(injection) => {
                pdf_telemetry::count(pdf_telemetry::counters::FAILPOINTS_HIT, 1);
                match injection.error() {
                    Some(error) => Err(error),
                    None if injection == pdf_chaos::Injection::Panic => {
                        panic!("injected failpoint {}", pdf_chaos::sites::NETLIST_READ)
                    }
                    None => {
                        let mut text = std::fs::read_to_string(spec)?;
                        text.truncate(injection.torn_len(text.len()));
                        Ok(text)
                    }
                }
            }
            None => std::fs::read_to_string(spec),
        }
    });
    if retries > 0 {
        pdf_telemetry::count(pdf_telemetry::counters::IO_RETRIES, u64::from(retries));
    }
    result
}

/// Reduces a raw netlist to the combinational, parity-free form the path
/// analyses expect. Notices go to `notes`.
fn normalize_netlist(
    spec: &str,
    netlist: Netlist,
    notes: &mut String,
) -> Result<Circuit, CliError> {
    let netlist = if netlist.dff_count() > 0 {
        let _ = writeln!(
            notes,
            "note: {} flip-flops removed; analysing the combinational core",
            netlist.dff_count()
        );
        netlist.combinational_core()
    } else {
        netlist
    };
    let netlist = if netlist.gates().iter().any(|g| g.kind.is_parity()) {
        let _ = writeln!(notes, "note: XOR/XNOR gates decomposed for path analysis");
        netlist.decompose_parity()
    } else {
        netlist
    };
    // A failed expansion is a structural diagnostic, not an operational
    // error: it carries a PDLxxx class and exits with the lint status.
    netlist
        .to_circuit()
        .map_err(|e| CliError::lint(Diagnostic::from_netlist_error(spec, &e).to_string()))
}

/// Loads a circuit by name or file path, normalizing to a combinational,
/// parity-free line-level circuit, and runs the automatic structural lint
/// according to `PDF_LINT`. Notices and lint findings go to `notes`.
pub fn load_circuit(spec: &str, notes: &mut String) -> Result<Circuit, CliError> {
    let mode = LintMode::from_env();
    // s27 keeps the paper's exact hand-assigned line numbering, which the
    // generic bench pipeline would not reproduce; c17 rides along.
    let (netlist_report, circuit) = if spec == "s27" {
        (LintReport::new(), pdf_netlist::iscas::s27())
    } else if spec == "c17" {
        (LintReport::new(), pdf_netlist::iscas::c17())
    } else {
        let netlist = resolve_netlist(spec)?;
        let report = match mode {
            LintMode::Off => LintReport::new(),
            _ => pdf_analyze::lint_netlist(&netlist),
        };
        (report, normalize_netlist(spec, netlist, notes)?)
    };
    if matches!(mode, LintMode::Off) {
        return Ok(circuit);
    }
    let mut report = netlist_report;
    report.extend(pdf_analyze::lint_circuit(&circuit));
    // The semantic (value-level) lints join the automatic preflight only
    // when the sensitizability pass is enabled, so default runs keep
    // byte-identical stderr. Their findings are warnings: the deny mode
    // reports them without aborting.
    if env_switch("PDF_SENSITIZE")?.unwrap_or(false) {
        report.extend(lint_semantic(&circuit));
    }
    if report.is_clean() {
        return Ok(circuit);
    }
    if matches!(mode, LintMode::Deny) && report.has_errors() {
        return Err(CliError::lint(render_report(&report)));
    }
    for d in report.iter() {
        let _ = writeln!(notes, "{d}");
    }
    Ok(circuit)
}

fn render_report(report: &LintReport) -> String {
    let mut s = String::new();
    for d in report.iter() {
        let _ = writeln!(s, "{d}");
    }
    let _ = write!(
        s,
        "lint: {} error(s), {} warning(s)",
        report.error_count(),
        report.warning_count()
    );
    s
}

/// `pdfatpg lint`: runs the full structural lint (raw netlist plus the
/// expanded line-level circuit) regardless of `PDF_LINT`, and fails with
/// [`EXIT_LINT`] when error-severity diagnostics are found.
pub fn cmd_lint(spec: &str) -> Result<String, CliError> {
    let netlist = resolve_netlist(spec)?;
    let mut report = pdf_analyze::lint_netlist(&netlist);
    let mut notes = String::new();
    // Lint what the analyses will actually see, too: the normalization
    // itself can fail, which surfaces as a typed diagnostic — combined
    // with whatever the netlist pass already found, not instead of it.
    match normalize_netlist(spec, netlist, &mut notes) {
        // The explicit lint command always runs the semantic pass too —
        // it exists to surface everything the analyses can prove.
        Ok(circuit) => {
            report.extend(pdf_analyze::lint_circuit(&circuit));
            report.extend(lint_semantic(&circuit));
        }
        Err(e) => {
            let mut message = String::new();
            for d in report.iter() {
                let _ = writeln!(message, "{d}");
            }
            message.push_str(&e.message);
            return Err(CliError::lint(message));
        }
    }
    if report.has_errors() {
        return Err(CliError::lint(render_report(&report)));
    }
    if report.is_clean() {
        return Ok(format!("{spec}: clean\n"));
    }
    Ok(format!("{}\n", render_report(&report)))
}

/// `pdfatpg info`.
pub fn cmd_info(circuit: &Circuit) -> String {
    let spectrum = PathSpectrum::of(circuit);
    let mut s = String::new();
    let _ = writeln!(s, "circuit: {}", circuit.name());
    let _ = writeln!(
        s,
        "lines: {} ({} inputs, {} gates, {} branches, {} outputs)",
        circuit.line_count(),
        circuit.inputs().len(),
        circuit.gate_count(),
        circuit.branch_count(),
        circuit.outputs().len(),
    );
    let _ = writeln!(s, "critical path delay: {}", circuit.critical_delay());
    let _ = writeln!(
        s,
        "complete paths: {}{}",
        spectrum.total(),
        if spectrum.saturated() {
            "+ (saturated)"
        } else {
            ""
        },
    );
    let _ = writeln!(
        s,
        "path delays: {} distinct, {}..={}",
        spectrum.iter_desc().count(),
        spectrum.min_delay().unwrap_or(0),
        spectrum.max_delay().unwrap_or(0),
    );
    s
}

/// `pdfatpg spectrum`.
pub fn cmd_spectrum(circuit: &Circuit, options: &Options) -> Result<String, CliError> {
    let top: usize = options.parsed("top", 20)?;
    let spectrum = PathSpectrum::of(circuit);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>4} {:>8} {:>20} {:>20}",
        "i", "L_i", "paths", "cumulative"
    );
    let mut cumulative = 0u64;
    for (i, (delay, count)) in spectrum.iter_desc().take(top).enumerate() {
        cumulative = cumulative.saturating_add(count);
        let _ = writeln!(s, "{i:>4} {delay:>8} {count:>20} {cumulative:>20}");
    }
    Ok(s)
}

fn strategy_from(options: &Options) -> Result<Strategy, CliError> {
    match options.value("strategy") {
        None | Some("distance") => Ok(Strategy::DistanceBased),
        Some("moderate") => Ok(Strategy::Moderate),
        Some(other) => err(format!("unknown strategy `{other}`")),
    }
}

/// `pdfatpg paths`.
pub fn cmd_paths(circuit: &Circuit, options: &Options) -> Result<String, CliError> {
    let cap: usize = options.parsed("cap", 10_000)?;
    let units: u32 = options.parsed("units", 2)?;
    let result = PathEnumerator::new(circuit)
        .with_cap(cap)
        .with_units_per_path(units)
        .with_strategy(strategy_from(options)?)
        .enumerate();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} paths retained (cap {} fault units; {} removals{})",
        result.store.len(),
        cap,
        result.stats.removed,
        if result.stats.overflowed {
            "; cap overflowed"
        } else {
            ""
        },
    );
    for entry in result.store.iter() {
        let _ = writeln!(s, "{:>4}  {}", entry.delay, entry.path);
    }
    Ok(s)
}

/// Whether static learning was requested, by flag or `PDF_STATIC_LEARNING`.
fn static_learning_requested(options: &Options) -> bool {
    options.has("static-learning") || pdf_analyze::static_learning_from_env()
}

/// Learns the implication table when requested; `None` keeps the plain,
/// byte-identical behavior.
fn learned_table(circuit: &Circuit, options: &Options) -> Option<LearnedImplications> {
    static_learning_requested(options).then(|| pdf_analyze::learn_implications(circuit))
}

/// Classifies the enumerated paths when the sensitizability pass was
/// requested (by `--sensitize` or `PDF_SENSITIZE`); `None` keeps the
/// plain, byte-identical behavior.
fn sensitize_analysis(
    circuit: &Circuit,
    store: &PathStore,
    learned: Option<&LearnedImplications>,
    options: &Options,
) -> Result<Option<SensitizeAnalysis>, CliError> {
    Ok(switch_with_env(options, "sensitize", "PDF_SENSITIZE")?
        .then(|| classify_store(circuit, store, pdf_faults::Sensitization::Robust, learned)))
}

/// Builds the fault list, pre-eliminating provably false faults when a
/// sensitizability analysis is present.
fn build_faults(
    circuit: &Circuit,
    store: &PathStore,
    learned: Option<&LearnedImplications>,
    analysis: Option<&SensitizeAnalysis>,
) -> (FaultList, pdf_faults::FaultListStats) {
    match analysis {
        Some(a) => FaultList::build_with_filter(
            circuit,
            store,
            pdf_faults::Sensitization::Robust,
            learned,
            Some(&|i, p| a.is_false(i, p)),
        ),
        None => FaultList::build_with_learned(
            circuit,
            store,
            pdf_faults::Sensitization::Robust,
            learned,
        ),
    }
}

/// The `faults`/`atpg` note summarizing one sensitizability pass.
fn sensitize_note(analysis: &SensitizeAnalysis, eliminated: usize) -> String {
    let counts = analysis.class_counts();
    format!(
        "sensitizability: {} paths ({} false, {} robust, {} unknown); {} faults pre-eliminated",
        analysis.stats.paths, counts.false_paths, counts.robust, counts.unknown, eliminated,
    )
}

/// `pdfatpg faults`.
pub fn cmd_faults(circuit: &Circuit, options: &Options) -> Result<String, CliError> {
    let cap: usize = options.parsed("cap", 10_000)?;
    let limit: usize = options.parsed("limit", 20)?;
    let table = learned_table(circuit, options);
    let result = PathEnumerator::new(circuit).with_cap(cap).enumerate();
    let analysis = sensitize_analysis(circuit, &result.store, table.as_ref(), options)?;
    let (faults, stats) = build_faults(circuit, &result.store, table.as_ref(), analysis.as_ref());
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} candidates -> {} detectable ({} conflicting conditions, {} by implication)",
        stats.candidates,
        faults.len(),
        stats.rule1_conflicts,
        stats.rule2_conflicts,
    );
    if let Some(table) = &table {
        let _ = writeln!(
            s,
            "static learning: {} implications learned, {} faults eliminated",
            table.len(),
            stats.statically_eliminated,
        );
    }
    if let Some(analysis) = &analysis {
        let _ = writeln!(
            s,
            "{}",
            sensitize_note(analysis, stats.sensitize_eliminated)
        );
    }
    let histogram = pdf_paths::LengthHistogram::from_lengths(faults.delays());
    let _ = writeln!(s, "length classes: {}", histogram.len());
    for entry in faults.iter().take(limit) {
        let _ = writeln!(s, "{}  A(p) = {}", entry.fault, entry.assignments);
    }
    if faults.len() > limit {
        let _ = writeln!(s, "... {} more (raise --limit)", faults.len() - limit);
    }
    Ok(s)
}

/// `pdfatpg analyze`: a JSON testability and path-classification report.
///
/// Combines the static passes — the exact per-line-DP path spectrum (no
/// enumeration), SCOAP controllability/observability, the
/// sensitizability classification of the enumerated longest paths, and
/// the semantic lints — and cross-checks them: the classified-path
/// counts must cover the store, and when nothing was capped the
/// enumerated population must equal the spectrum total.
pub fn cmd_analyze(circuit: &Circuit, options: &Options) -> Result<String, CliError> {
    let cap: usize = options.parsed("cap", 10_000)?;
    let table = learned_table(circuit, options);
    let spectrum = PathSpectrum::of(circuit);
    let result = PathEnumerator::new(circuit).with_cap(cap).enumerate();
    let analysis = classify_store(
        circuit,
        &result.store,
        pdf_faults::Sensitization::Robust,
        table.as_ref(),
    );
    let counts = analysis.class_counts();
    if counts.total() != result.store.len() {
        return err(format!(
            "internal error: {} classified paths do not cover the {} enumerated",
            counts.total(),
            result.store.len()
        ));
    }
    // With nothing capped or saturated, enumeration and the per-line DP
    // count the same population — a disagreement is a real defect.
    let complete = !result.stats.overflowed && result.stats.removed == 0 && !spectrum.saturated();
    if complete && result.store.len() as u64 != spectrum.total() {
        return err(format!(
            "internal error: {} enumerated paths but the spectrum counts {}",
            result.store.len(),
            spectrum.total()
        ));
    }

    let testability = Testability::of(circuit);
    let mut max_difficulty = 0u32;
    let mut hardest: Option<&str> = None;
    for (id, line) in circuit.iter() {
        let difficulty = testability.difficulty(id);
        if difficulty > max_difficulty || hardest.is_none() {
            max_difficulty = difficulty;
            hardest = Some(line.name());
        }
    }
    let constants = constant_lines(circuit);
    let semantic = lint_semantic(circuit);

    let report = Json::object()
        .field("circuit", circuit.name())
        .field("lines", circuit.line_count())
        .field("critical_delay", circuit.critical_delay())
        .field(
            "spectrum",
            Json::object()
                .field("complete_paths", spectrum.total())
                .field("saturated", spectrum.saturated())
                .field("distinct_delays", spectrum.iter_desc().count()),
        )
        .field(
            "paths",
            Json::object()
                .field("enumerated", result.store.len())
                .field("cap", cap)
                .field("complete", complete)
                .field("false", counts.false_paths)
                .field("robust", counts.robust)
                .field("unknown", counts.unknown),
        )
        .field(
            "faults",
            Json::object()
                .field("false", analysis.stats.false_faults)
                .field("split_refuted", analysis.stats.split_refuted),
        )
        .field(
            "testability",
            Json::object()
                .field("max_difficulty", max_difficulty)
                .field(
                    "hardest_line",
                    hardest.map_or(Json::Null, |name| Json::Str(name.to_owned())),
                ),
        )
        .field(
            "constants",
            Json::Arr(
                constants
                    .iter()
                    .map(|c| {
                        Json::object()
                            .field("line", circuit.line(c.line).name())
                            .field("value", c.value.to_string())
                    })
                    .collect(),
            ),
        )
        .field("semantic_lints", semantic.warning_count());
    Ok(format!("{}\n", report.to_pretty()))
}

fn heuristic_from(options: &Options) -> Result<Compaction, CliError> {
    match options.value("heuristic") {
        None | Some("values") => Ok(Compaction::ValueBased),
        Some("uncomp") => Ok(Compaction::Uncompacted),
        Some("arbit") => Ok(Compaction::Arbitrary),
        Some("length") => Ok(Compaction::LengthBased),
        Some(other) => err(format!("unknown heuristic `{other}`")),
    }
}

/// The atpg run-control options: the generation budget (from
/// `--time-budget` or `PDF_TIME_BUDGET`), the checkpoint policy (from
/// `--checkpoint`/`--checkpoint-every` or their environment variables)
/// and a checkpoint to resume from (`--resume`).
struct RunControl {
    budget_spec: Option<BudgetSpec>,
    checkpoint: Option<CheckpointPolicy>,
    resume: Option<Checkpoint>,
}

fn run_control_from(options: &Options) -> Result<RunControl, CliError> {
    // Flag beats env, but the env twin is *validated* either way: a
    // set-but-unparsable `PDF_*` knob always aborts (the strict parsing
    // contract), never rides silently under a flag override.
    let env_budget =
        BudgetSpec::from_env().map_err(|e| CliError::new(format!("PDF_TIME_BUDGET: {e}")))?;
    let budget_spec = match options.value("time-budget") {
        Some(text) => Some(
            BudgetSpec::parse(text).map_err(|e| CliError::new(format!("--time-budget: {e}")))?,
        ),
        None => env_budget,
    };
    // The checkpoint path and cadence resolve independently: the path from
    // `--checkpoint` (else `PDF_CHECKPOINT`), the cadence from
    // `--checkpoint-every` (else `PDF_CHECKPOINT_EVERY`, else the
    // default) — so a flag and an env var combine instead of conflicting.
    let env_policy = CheckpointPolicy::from_env().map_err(CliError::new)?;
    let every = match options.value("checkpoint-every") {
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            // `0` must fail here, at config parse, with the same
            // variable+value shape as the env twin — not survive to the
            // cadence clamp in pdf-runctl.
            _ => {
                return err(format!(
                    "invalid --checkpoint-every=`{raw}`: expected a positive integer"
                ))
            }
        },
        None => env_policy
            .as_ref()
            .map_or(pdf_atpg::DEFAULT_CHECKPOINT_EVERY, |p| p.every),
    };
    let checkpoint = match options.value("checkpoint") {
        Some(path) => Some(CheckpointPolicy::new(path, every)),
        None => match env_policy {
            Some(policy) => Some(CheckpointPolicy { every, ..policy }),
            None => {
                if options.value("checkpoint-every").is_some() {
                    return err("--checkpoint-every requires --checkpoint (or PDF_CHECKPOINT)");
                }
                None
            }
        },
    };
    let resume = match options.value("resume") {
        Some(path) => {
            let (checkpoint, recovered) =
                Checkpoint::load_with_recovery(std::path::Path::new(path)).map_err(|e| {
                    let code = match &e {
                        pdf_atpg::CheckpointError::Corrupt { .. } => EXIT_CORRUPT,
                        _ => EXIT_ERROR,
                    };
                    CliError {
                        message: format!("--resume: {e}"),
                        code,
                    }
                })?;
            if recovered {
                eprintln!(
                    "note: --resume continued from checkpoint generation {}",
                    checkpoint.generation
                );
            }
            Some(checkpoint)
        }
        None => None,
    };
    Ok(RunControl {
        budget_spec,
        checkpoint,
        resume,
    })
}

/// Resolves a numeric knob with an environment twin: the `--flag` value
/// when given, else the parsed `env` variable, else `default`. The env
/// twin is validated (with the fail-fast variable+value message) even
/// when the flag overrides it.
fn parsed_with_env<T: std::str::FromStr>(
    options: &Options,
    flag: &str,
    env: &str,
    default: T,
) -> Result<T, CliError> {
    let env_value = match std::env::var(env) {
        Ok(raw) => Some(raw.parse::<T>().map_err(|_| {
            CliError::new(format!("invalid {env}=`{raw}`: expected a valid value"))
        })?),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            return err(format!("invalid {env}={raw:?}: not valid unicode"))
        }
    };
    match options.value(flag) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::new(format!("invalid value for --{flag}: `{v}`"))),
        None => Ok(env_value.unwrap_or(default)),
    }
}

/// Resolves a positive-integer knob with an environment twin: flag wins,
/// env applies otherwise. Both reject `0` and unparsable values at config
/// parse with the variable+value fail-fast message, and the env twin is
/// validated even when the flag overrides it.
fn positive_with_env(
    options: &Options,
    flag: &str,
    env: &str,
    default: usize,
) -> Result<usize, CliError> {
    let parse = |raw: &str, name: &str| -> Result<usize, CliError> {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(CliError::new(format!(
                "invalid {name}=`{raw}`: expected a positive integer"
            ))),
        }
    };
    let env_value = match std::env::var(env) {
        Ok(raw) => Some(parse(&raw, env)?),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            return err(format!("invalid {env}={raw:?}: not valid unicode"))
        }
    };
    match options.value(flag) {
        Some(raw) => parse(raw, &format!("--{flag}")),
        None => Ok(env_value.unwrap_or(default)),
    }
}

/// Resolves a string knob with an environment twin: flag wins, env
/// applies otherwise.
fn string_with_env(options: &Options, flag: &str, env: &str) -> Result<Option<String>, CliError> {
    if let Some(v) = options.value(flag) {
        return Ok(Some(v.to_owned()));
    }
    match std::env::var(env) {
        Ok(v) => Ok(Some(v)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => {
            err(format!("invalid {env}={raw:?}: not valid unicode"))
        }
    }
}

/// Parses an `on`/`off` environment switch (`None` when unset), with the
/// fail-fast variable+value message.
fn env_switch(env: &str) -> Result<Option<bool>, CliError> {
    match std::env::var(env) {
        Ok(raw) => match raw.to_ascii_lowercase().as_str() {
            "1" | "on" | "true" => Ok(Some(true)),
            "0" | "off" | "false" => Ok(Some(false)),
            _ => err(format!(
                "invalid {env}=`{raw}`: expected `on`/`off` (or 1/0, true/false)"
            )),
        },
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => {
            err(format!("invalid {env}={raw:?}: not valid unicode"))
        }
    }
}

/// Resolves a boolean switch with an environment twin: the bare `--flag`
/// turns it on, else the env value applies. The env twin is validated
/// even when the flag is given.
fn switch_with_env(options: &Options, flag: &str, env: &str) -> Result<bool, CliError> {
    let env_value = env_switch(env)?;
    Ok(options.has(flag) || env_value.unwrap_or(false))
}

/// `pdfatpg matrix`: runs the cross-configuration invariant matrix (or
/// replays a minimized repro artifact with `--replay`). Violations exit
/// with [`EXIT_MATRIX`] and the summary on stderr, mirroring `lint`.
pub fn cmd_matrix(options: &Options) -> Result<String, CliError> {
    if let Some(path) = options.value("replay") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("cannot read `{path}`: {e}")))?;
        let repro = pdf_matrix::ReproCase::parse(&text)
            .map_err(|e| CliError::new(format!("`{path}` is not a repro artifact: {e}")))?;
        return match pdf_matrix::replay(&repro).map_err(CliError::new)? {
            Some(detail) => Err(CliError {
                message: format!(
                    "repro `{path}` still reproduces [{}]: {detail}",
                    repro.invariant.label()
                ),
                code: EXIT_MATRIX,
            }),
            None => Ok(format!(
                "repro `{path}` [{}] no longer reproduces\n",
                repro.invariant.label()
            )),
        };
    }

    let full = switch_with_env(options, "full", "PDF_MATRIX_FULL")?;
    let mut axes = if full {
        pdf_matrix::MatrixAxes::full()
    } else {
        pdf_matrix::MatrixAxes::smoke()
    };
    if let Some(list) = string_with_env(options, "circuits", "PDF_MATRIX_CIRCUITS")? {
        let circuits: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if circuits.is_empty() {
            return err(format!("invalid circuit list `{list}`: selects nothing"));
        }
        for c in &circuits {
            if pdf_matrix::resolve_circuit(c).is_none() {
                return err(format!("unknown matrix circuit `{c}`"));
            }
        }
        axes.circuits = circuits;
    }
    if let Some(list) = string_with_env(options, "seeds", "PDF_MATRIX_SEEDS")? {
        let seeds: Vec<u64> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .map_err(|_| CliError::new(format!("invalid seed `{s}` in `{list}`")))
            })
            .collect::<Result<_, CliError>>()?;
        if seeds.is_empty() {
            return err(format!("invalid seed list `{list}`: selects nothing"));
        }
        axes.seeds = seeds;
    }
    let max_cells: usize = parsed_with_env(options, "cells", "PDF_MATRIX_CELLS", 200)?;
    if max_cells == 0 {
        return err("invalid --cells=`0`: expected a positive integer");
    }

    let started = Instant::now();
    let outcome = pdf_matrix::MatrixRunner::new(axes)
        .with_max_cells(max_cells)
        .run();
    let elapsed = started.elapsed().as_secs_f64();

    if let Some(path) = string_with_env(options, "report", "PDF_MATRIX_REPORT")? {
        std::fs::write(&path, outcome.to_report_json().to_pretty())
            .map_err(|e| CliError::new(format!("cannot write report `{path}`: {e}")))?;
    }
    if let Some(dir) = string_with_env(options, "repro-dir", "PDF_MATRIX_REPRO_DIR")? {
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::new(format!("cannot create `{dir}`: {e}")))?;
        for (i, repro) in outcome.repros.iter().enumerate() {
            let path = std::path::Path::new(&dir).join(format!("pdf-matrix-repro-{i}.json"));
            std::fs::write(&path, repro.to_json().to_pretty()).map_err(|e| {
                CliError::new(format!("cannot write repro `{}`: {e}", path.display()))
            })?;
        }
    }

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "matrix: {} cells in {elapsed:.1}s",
        outcome.observations.len()
    );
    for invariant in pdf_matrix::Invariant::ALL {
        let count = outcome
            .violations
            .iter()
            .filter(|v| v.invariant == invariant)
            .count();
        let _ = writeln!(
            summary,
            "  {:<10} {}",
            invariant.label(),
            if count == 0 {
                "ok".to_owned()
            } else {
                format!("{count} violation(s)")
            }
        );
    }
    for violation in &outcome.violations {
        let _ = writeln!(
            summary,
            "  [{}] {}",
            violation.invariant.label(),
            violation.detail
        );
    }
    if outcome.passed() {
        Ok(summary)
    } else {
        Err(CliError {
            message: summary,
            code: EXIT_MATRIX,
        })
    }
}

/// `pdfatpg atpg`.
pub fn cmd_atpg(circuit: &Circuit, options: &Options) -> Result<String, CliError> {
    let started = Instant::now();
    let _telemetry = options
        .value("telemetry")
        .map(pdf_telemetry::Guard::to_path);
    let sim = sim_options_from(options)?;
    let cap: usize = options.parsed("cap", 10_000)?;
    let n_p0: usize = options.parsed("np0", 1_000)?;
    let seed: u64 = options.parsed("seed", 2002)?;
    let attempts: u32 = options.parsed("attempts", 1)?;
    let cone_cache: usize = parsed_with_env(
        options,
        "cone-cache",
        "PDF_CONE_CACHE",
        pdf_atpg::DEFAULT_CONE_CACHE,
    )?;
    let threads = positive_with_env(options, "threads", "PDF_THREADS", 1)?;
    // Installed before run control so an armed `checkpoint.read` entry
    // already covers the --resume load. The PDF_FAILPOINTS twin was
    // validated (and installed) at startup; the flag re-installs over it.
    if let Some(spec_text) = options.value("failpoints") {
        let spec = pdf_chaos::FailpointSpec::parse(spec_text)
            .map_err(|e| CliError::new(format!("invalid value for --failpoints: {e}")))?;
        pdf_chaos::install(&spec);
    }
    let RunControl {
        budget_spec,
        checkpoint,
        resume,
    } = run_control_from(options)?;
    let budget = match &budget_spec {
        Some(spec) => RunBudget::with_deadline(spec.deadline_for("generate", started, started)),
        None => RunBudget::unlimited(),
    };
    let table = learned_table(circuit, options).map(std::sync::Arc::new);
    // SCOAP guidance intentionally changes the search (and so the random
    // stream): the guide is recorded in the config fingerprint, and the
    // guided run stays deterministic in its own right.
    let guide = switch_with_env(options, "scoap", "PDF_SCOAP")?.then(|| {
        let testability = Testability::of(circuit);
        std::sync::Arc::new(BranchGuide::new(
            testability.cc0_table().to_vec(),
            testability.cc1_table().to_vec(),
        ))
    });
    let config = AtpgConfig {
        seed,
        compaction: heuristic_from(options)?,
        justify_attempts: attempts,
        sim,
        cone_cache,
        budget,
        checkpoint,
        learned: table.clone(),
        guide: guide.clone(),
        threads,
        ..AtpgConfig::default()
    };

    let result = PathEnumerator::new(circuit).with_cap(cap).enumerate();
    let analysis = sensitize_analysis(circuit, &result.store, table.as_deref(), options)?;
    let (faults, fault_stats) =
        build_faults(circuit, &result.store, table.as_deref(), analysis.as_ref());
    if faults.is_empty() {
        return err("no detectable path delay faults in the enumerated population");
    }
    let split = TargetSplit::by_cumulative_length(&faults, n_p0);

    let mut s = String::new();
    if let Some(table) = &table {
        let _ = writeln!(
            s,
            "static learning: {} implications learned, {} faults eliminated",
            table.len(),
            fault_stats.statically_eliminated,
        );
    }
    if let Some(analysis) = &analysis {
        let _ = writeln!(
            s,
            "{}",
            sensitize_note(analysis, fault_stats.sensitize_eliminated)
        );
    }
    if guide.is_some() {
        let _ = writeln!(
            s,
            "scoap: branch guidance and hardest-first target ordering enabled"
        );
    }
    let _ = writeln!(
        s,
        "targets: |P0| = {} (lengths >= {}), |P1| = {}",
        split.p0().len(),
        split.cutoffs()[0],
        split.p1().len(),
    );
    let resume_err = |e: pdf_atpg::ResumeError| CliError::new(format!("--resume: {e}"));
    let (outcome, summary) = if options.has("enrich") {
        let atpg = EnrichmentAtpg::new(circuit).with_config(config.clone());
        let outcome = match &resume {
            Some(cp) => atpg.run_resumed(&split, cp).map_err(resume_err)?,
            None => atpg.run(&split),
        };
        let summary = format!(
            "enrichment: {} tests; P0 {}/{}; P0∪P1 {}/{}",
            outcome.tests().len(),
            outcome.detected_in_set(0),
            split.p0().len(),
            outcome.detected_total(),
            split.total(),
        );
        (outcome, summary)
    } else {
        let atpg = BasicAtpg::new(circuit).with_config(config.clone());
        let outcome = match &resume {
            Some(cp) => atpg.run_resumed(split.p0(), cp).map_err(resume_err)?,
            None => atpg.run(split.p0()),
        };
        let summary = format!(
            "basic ({}): {} tests; P0 {}/{}",
            config.compaction.label(),
            outcome.tests().len(),
            outcome.detected_in_set(0),
            split.p0().len(),
        );
        (outcome, summary)
    };
    let _ = writeln!(s, "{summary}");
    let _ = writeln!(s, "budget_exhausted: {}", outcome.budget_exhausted());
    let _ = writeln!(
        s,
        "faults_quarantined: {}",
        outcome.stats().faults_quarantined
    );
    let tests = outcome.tests().clone();

    let tests = if options.has("minimize") {
        let everything: FaultList = split
            .p0()
            .iter()
            .chain(split.p1().iter())
            .cloned()
            .collect();
        let before = tests.len();
        let compact_budget = match &budget_spec {
            Some(spec) => {
                RunBudget::with_deadline(spec.deadline_for("compact", started, Instant::now()))
            }
            None => RunBudget::unlimited(),
        };
        let (minimized, cut_short) =
            tests.minimized_within(&compact_budget, sim, circuit, &everything);
        if cut_short {
            let _ = writeln!(
                s,
                "static minimization skipped: time budget exhausted ({} tests kept)",
                minimized.len(),
            );
        } else {
            let _ = writeln!(
                s,
                "static minimization: {} -> {} tests (coverage preserved)",
                before,
                minimized.len(),
            );
        }
        minimized
    } else {
        tests
    };

    if let Some(path) = options.value("output") {
        std::fs::write(path, tests.to_text())
            .map_err(|e| CliError::new(format!("cannot write `{path}`: {e}")))?;
        let _ = writeln!(s, "test set written to {path}");
    } else {
        s.push_str(&tests.to_text());
    }
    Ok(s)
}

/// `pdfatpg sim`.
pub fn cmd_sim(circuit: &Circuit, v1: &str, v2: &str) -> Result<String, CliError> {
    let parse = |text: &str| -> Result<Vec<Value>, CliError> {
        let values: Result<Vec<Value>, _> = text.chars().map(Value::try_from).collect();
        values.map_err(|e| CliError::new(e.to_string()))
    };
    let v1 = parse(v1)?;
    let v2 = parse(v2)?;
    let n = circuit.inputs().len();
    if v1.len() != n || v2.len() != n {
        return err(format!("patterns must have {n} values (one per input)"));
    }
    let test = TwoPattern::new(v1, v2);
    let waves = pdf_netlist::simulate_triples(circuit, &test.to_triples());
    let mut s = String::new();
    let _ = writeln!(s, "test: {test}");
    let _ = writeln!(s, "{:>5}  {:<16} {:<8} waveform", "line", "name", "kind");
    for (id, line) in circuit.iter() {
        let kind = match line.kind() {
            LineKind::Input => "input",
            LineKind::Gate(_) => "gate",
            LineKind::Branch { .. } => "branch",
        };
        let _ = writeln!(
            s,
            "{:>5}  {:<16} {:<8} {}{}",
            id.to_string(),
            line.name(),
            kind,
            waves[id.index()],
            if line.is_output() { "  [output]" } else { "" },
        );
    }
    Ok(s)
}

/// The `PDF_SIM_BACKEND` selection, as a [`CliError`] naming the bad
/// value and the accepted ones when the variable is set but unparsable.
pub fn sim_backend_from_env() -> Result<pdf_sim::SimBackend, CliError> {
    pdf_sim::SimBackend::from_env().map_err(|e| CliError::new(format!("PDF_SIM_BACKEND: {e}")))
}

/// The full simulation option block: the `PDF_SIM_BACKEND` /
/// `PDF_SIM_WIDTH` / `PDF_SIM_EVENTS` environment selection, as a
/// [`CliError`] naming the offending variable when one is unparsable.
pub fn sim_options_from_env() -> Result<pdf_sim::SimOptions, CliError> {
    pdf_sim::SimOptions::from_env().map_err(CliError::new)
}

/// [`sim_options_from_env`] plus the `--sim-width` and `--sim-events`
/// command-line overrides.
fn sim_options_from(options: &Options) -> Result<pdf_sim::SimOptions, CliError> {
    let mut opts = sim_options_from_env()?;
    if let Some(text) = options.value("sim-width") {
        opts.width = text
            .parse()
            .map_err(|e| CliError::new(format!("--sim-width: {e}")))?;
    }
    if let Some(text) = options.value("sim-events") {
        opts.events = match text.to_ascii_lowercase().as_str() {
            "1" | "on" | "true" => true,
            "0" | "off" | "false" => false,
            other => {
                return err(format!(
                    "--sim-events: unknown event-propagation switch `{other}` \
                     (accepted values: `on`, `off`, `1`, `0`, `true`, `false`)"
                ))
            }
        };
    }
    Ok(opts)
}

/// Runs a full command line (without `argv[0]`). Returns the stdout text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return err(USAGE);
    };
    if command == "--help" || command == "-h" || command == "help" {
        return Ok(USAGE.to_owned());
    }
    // A bad simulation override must abort before any work happens,
    // whatever the command — not surface halfway through a generation run.
    let _ = sim_options_from_env()?;
    // Same fail-fast contract for the chaos knobs: a malformed retry
    // policy or failpoint spec aborts up front. A valid PDF_FAILPOINTS
    // arms injection for every command (the atpg --failpoints flag
    // re-installs over it).
    let _ = pdf_chaos::RetryPolicy::from_env().map_err(CliError::new)?;
    pdf_chaos::install_from_env().map_err(CliError::new)?;
    let _telemetry = pdf_telemetry::Guard::from_env();
    // The matrix command runs over its own circuit axis, not a single
    // circuit argument.
    if command == "matrix" {
        let options = Options::parse(
            &args[1..],
            &[
                "cells",
                "circuits",
                "seeds",
                "report",
                "repro-dir",
                "replay",
            ],
            &["full"],
        )?;
        return cmd_matrix(&options);
    }
    let Some(spec) = args.get(1) else {
        return err(format!(
            "`{command}` requires a circuit argument\n\n{USAGE}"
        ));
    };
    let rest = &args[2..];
    // The lint command drives its own loading (it must see the raw
    // netlist and report parse failures as diagnostics, not abort in the
    // automatic pre-lint).
    if command == "lint" {
        return cmd_lint(spec);
    }
    let mut notes = String::new();
    let circuit = load_circuit(spec, &mut notes)?;
    if !notes.is_empty() {
        eprint!("{notes}");
    }
    match command.as_str() {
        "info" => Ok(cmd_info(&circuit)),
        "spectrum" => {
            let options = Options::parse(rest, &["top"], &[])?;
            cmd_spectrum(&circuit, &options)
        }
        "paths" => {
            let options = Options::parse(rest, &["cap", "units", "strategy"], &[])?;
            cmd_paths(&circuit, &options)
        }
        "faults" => {
            let options =
                Options::parse(rest, &["cap", "limit"], &["static-learning", "sensitize"])?;
            cmd_faults(&circuit, &options)
        }
        "analyze" => {
            let options = Options::parse(rest, &["cap"], &["static-learning"])?;
            cmd_analyze(&circuit, &options)
        }
        "atpg" => {
            let options = Options::parse(
                rest,
                &[
                    "cap",
                    "np0",
                    "heuristic",
                    "seed",
                    "attempts",
                    "cone-cache",
                    "output",
                    "telemetry",
                    "time-budget",
                    "checkpoint",
                    "checkpoint-every",
                    "resume",
                    "sim-width",
                    "sim-events",
                    "threads",
                    "failpoints",
                ],
                &[
                    "enrich",
                    "minimize",
                    "static-learning",
                    "sensitize",
                    "scoap",
                ],
            )?;
            cmd_atpg(&circuit, &options)
        }
        "sim" => match rest {
            [v1, v2] => cmd_sim(&circuit, v1, v2),
            _ => err("sim requires exactly two pattern arguments"),
        },
        "dot" => Ok(pdf_netlist::to_dot(&circuit)),
        "bench" => {
            // Emitting the line-level circuit would be lossy; emit the
            // original netlist for stand-ins and parsed files instead.
            if let Some(profile) = pdf_netlist::stand_in_profile(spec) {
                Ok(pdf_netlist::to_bench_string(&profile.generate()))
            } else if spec == "s27" {
                Ok(pdf_netlist::iscas::S27_BENCH.to_owned())
            } else if spec == "c17" {
                Ok(pdf_netlist::iscas::C17_BENCH.to_owned())
            } else {
                let text = std::fs::read_to_string(spec)
                    .map_err(|e| CliError::new(format!("cannot read `{spec}`: {e}")))?;
                Ok(text)
            }
        }
        other => err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let e = run(&args(&["frobnicate", "s27"])).unwrap_err();
        assert!(e.message.contains("unknown command"));
    }

    #[test]
    fn info_on_s27() {
        let out = run(&args(&["info", "s27"])).unwrap();
        assert!(out.contains("26"), "{out}");
        assert!(out.contains("critical path delay: 10"));
    }

    #[test]
    fn spectrum_on_s27() {
        let out = run(&args(&["spectrum", "s27", "--top", "3"])).unwrap();
        assert!(out.contains("10"), "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
    }

    #[test]
    fn paths_moderate_walkthrough() {
        let out = run(&args(&[
            "paths",
            "s27",
            "--cap",
            "20",
            "--units",
            "1",
            "--strategy",
            "moderate",
        ]))
        .unwrap();
        assert!(out.contains("19 paths retained"), "{out}");
        assert!(out.contains("(1,8,13,14,16,19,20,21,22,25)"));
    }

    #[test]
    fn faults_lists_assignments() {
        let out = run(&args(&["faults", "s27", "--limit", "3"])).unwrap();
        assert!(out.contains("A(p)"), "{out}");
        assert!(out.contains("detectable"));
    }

    #[test]
    fn analyze_emits_a_reconciled_json_report() {
        let out = run(&args(&["analyze", "s27"])).unwrap();
        let json = Json::parse(&out).unwrap();
        assert_eq!(json.get("circuit").unwrap().as_str(), Some("s27"));
        let paths = json.get("paths").unwrap();
        let class_total = ["false", "robust", "unknown"]
            .iter()
            .map(|k| paths.get(k).unwrap().as_num().unwrap() as u64)
            .sum::<u64>();
        let enumerated = paths.get("enumerated").unwrap().as_num().unwrap() as u64;
        assert_eq!(class_total, enumerated, "{out}");
        // s27 is fully enumerable: the store must match the spectrum DP.
        assert_eq!(paths.get("complete"), Some(&Json::Bool(true)));
        let spectrum = json.get("spectrum").unwrap();
        let dp_total = spectrum.get("complete_paths").unwrap().as_num().unwrap() as u64;
        assert_eq!(enumerated, dp_total, "{out}");
        assert!(json
            .get("testability")
            .unwrap()
            .get("max_difficulty")
            .is_some());
    }

    #[test]
    fn faults_sensitize_adds_the_note_and_off_stays_plain() {
        let off = run(&args(&["faults", "s27", "--limit", "3"])).unwrap();
        assert!(!off.contains("sensitizability:"), "{off}");
        let on = run(&args(&["faults", "s27", "--limit", "3", "--sensitize"])).unwrap();
        assert!(on.contains("sensitizability:"), "{on}");
        // On s27 the classifier proves false exactly the faults rules
        // 1/2 already eliminate (the filter runs first and absorbs
        // them), so the detectable population is unchanged.
        assert!(off.contains("56 candidates -> 50 detectable"), "{off}");
        assert!(on.contains("56 candidates -> 50 detectable"), "{on}");
        assert!(on.contains("6 faults pre-eliminated"), "{on}");
    }

    #[test]
    fn atpg_scoap_is_deterministic_and_reports_the_mode() {
        let cmd = ["atpg", "s27", "--np0", "10", "--scoap", "--seed", "7"];
        let first = run(&args(&cmd)).unwrap();
        let second = run(&args(&cmd)).unwrap();
        assert_eq!(first, second, "guided runs must be deterministic");
        assert!(first.contains("scoap:"), "{first}");
        let body: String = first
            .lines()
            .skip_while(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!pdf_atpg::TestSet::from_text(&body).unwrap().is_empty());
    }

    #[test]
    fn atpg_sensitize_runs_end_to_end() {
        let out = run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--sensitize",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("sensitizability:"), "{out}");
        assert!(out.contains("path-delay-atpg test set v1"), "{out}");
    }

    #[test]
    fn atpg_enrich_emits_tests() {
        let out = run(&args(&[
            "atpg", "s27", "--np0", "10", "--enrich", "--seed", "7",
        ]))
        .unwrap();
        assert!(out.contains("enrichment:"), "{out}");
        assert!(out.contains("path-delay-atpg test set v1"));
        // The emitted text parses back.
        let body: String = out
            .lines()
            .skip_while(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        let set = pdf_atpg::TestSet::from_text(&body).unwrap();
        assert!(!set.is_empty());
    }

    #[test]
    fn atpg_minimize_reports_shrinkage() {
        let out = run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--minimize",
            "--heuristic",
            "uncomp",
        ]))
        .unwrap();
        assert!(out.contains("static minimization:"), "{out}");
    }

    #[test]
    fn atpg_reports_run_control_state() {
        let out = run(&args(&["atpg", "s27", "--np0", "10"])).unwrap();
        assert!(out.contains("budget_exhausted: false"), "{out}");
        assert!(out.contains("faults_quarantined: 0"), "{out}");
    }

    #[test]
    fn atpg_exhausted_budget_finalizes_a_valid_partial_set() {
        let out = run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--time-budget",
            "1us",
        ]))
        .unwrap();
        assert!(out.contains("budget_exhausted: true"), "{out}");
        // The (possibly empty) partial set still serializes validly.
        let body: String = out
            .lines()
            .skip_while(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(pdf_atpg::TestSet::from_text(&body).is_ok());
    }

    #[test]
    fn atpg_rejects_a_malformed_time_budget() {
        let e = run(&args(&["atpg", "s27", "--time-budget", "soon"])).unwrap_err();
        assert!(e.message.contains("--time-budget"), "{e}");
    }

    #[test]
    fn atpg_checkpoint_then_resume_reproduces_the_run() {
        let path = std::env::temp_dir().join(format!("pdf_cli_ckpt_{}.json", std::process::id()));
        let file = path.to_str().unwrap();
        let plain = run(&args(&["atpg", "s27", "--np0", "10", "--seed", "9"])).unwrap();
        let with_ckpt = run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--seed",
            "9",
            "--checkpoint",
            file,
        ]))
        .unwrap();
        assert_eq!(plain, with_ckpt, "checkpointing must not change the run");
        let resumed = run(&args(&[
            "atpg", "s27", "--np0", "10", "--seed", "9", "--resume", file,
        ]))
        .unwrap();
        assert_eq!(plain, resumed, "resuming must reproduce the run");
        let foreign = run(&args(&[
            "atpg", "s27", "--np0", "10", "--seed", "8", "--resume", file,
        ]))
        .unwrap_err();
        assert!(foreign.message.contains("checkpoint"), "{foreign}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_a_corrupt_checkpoint_exits_with_the_corrupt_code() {
        let path =
            std::env::temp_dir().join(format!("pdf_cli_corrupt_{}.json", std::process::id()));
        let file = path.to_str().unwrap();
        run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--seed",
            "9",
            "--checkpoint",
            file,
        ]))
        .unwrap();
        // Tear the surviving checkpoint and remove the previous
        // generation, so recovery has nowhere to fall back to.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let _ = std::fs::remove_file(pdf_atpg::previous_generation_path(&path));
        let e = run(&args(&[
            "atpg", "s27", "--np0", "10", "--seed", "9", "--resume", file,
        ]))
        .unwrap_err();
        assert_eq!(e.code, EXIT_CORRUPT, "{e}");
        assert!(e.message.contains("--resume"), "{e}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atpg_rejects_a_malformed_failpoints_flag() {
        let e = run(&args(&[
            "atpg",
            "s27",
            "--failpoints",
            "checkpoint.write:bogus@1",
        ]))
        .unwrap_err();
        assert!(e.message.contains("--failpoints"), "{e}");
        let e = run(&args(&["atpg", "s27", "--failpoints", "nowhere:io@1"])).unwrap_err();
        assert!(e.message.contains("--failpoints"), "{e}");
    }

    #[test]
    fn healing_failpoints_do_not_change_atpg_output() {
        let path = std::env::temp_dir().join(format!("pdf_cli_chaos_{}.json", std::process::id()));
        let file = path.to_str().unwrap();
        let clean = run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--seed",
            "9",
            "--checkpoint",
            file,
        ]))
        .unwrap();
        let clean_bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(pdf_atpg::previous_generation_path(&path));
        let chaos = run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--seed",
            "9",
            "--checkpoint",
            file,
            "--failpoints",
            "checkpoint.write:io@1",
        ]));
        pdf_chaos::clear();
        let chaos_bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(pdf_atpg::previous_generation_path(&path));
        assert_eq!(chaos.unwrap(), clean, "healed output must be identical");
        assert_eq!(clean_bytes, chaos_bytes, "healed checkpoint must match");
    }

    #[test]
    fn atpg_checkpoint_every_requires_a_checkpoint_file() {
        let e = run(&args(&["atpg", "s27", "--checkpoint-every", "4"])).unwrap_err();
        assert!(e.message.contains("--checkpoint"), "{e}");
    }

    #[test]
    fn sim_prints_waveforms() {
        let out = run(&args(&["sim", "s27", "0101010", "1101010"])).unwrap();
        assert!(out.contains("waveform"), "{out}");
        assert!(out.lines().count() > 26);
    }

    #[test]
    fn sim_rejects_wrong_width() {
        let e = run(&args(&["sim", "s27", "01", "10"])).unwrap_err();
        assert!(e.message.contains("7 values"));
    }

    #[test]
    fn dot_and_bench_roundtrip() {
        let dot = run(&args(&["dot", "c17"])).unwrap();
        assert!(dot.starts_with("digraph"));
        let bench = run(&args(&["bench", "b03"])).unwrap();
        let parsed = pdf_netlist::parse_bench(&bench, "b03").unwrap();
        assert!(parsed.gate_count() > 100);
    }

    #[test]
    fn missing_file_reports_error() {
        let e = run(&args(&["info", "/nonexistent/file.bench"])).unwrap_err();
        assert!(e.message.contains("cannot read"));
    }

    #[test]
    fn option_parser_rules() {
        let o = Options::parse(
            &args(&["--cap", "5", "pos", "--enrich"]),
            &["cap"],
            &["enrich"],
        )
        .unwrap();
        assert_eq!(o.value("cap"), Some("5"));
        assert!(o.has("enrich"));
        assert_eq!(o.positionals(), &["pos".to_owned()]);
        assert!(Options::parse(&args(&["--cap"]), &["cap"], &[]).is_err());
        assert!(Options::parse(&args(&["--bogus"]), &["cap"], &[]).is_err());
    }
}
