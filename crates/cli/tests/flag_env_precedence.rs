//! Flag-beats-env precedence for the `pdfatpg` configuration knobs.
//!
//! Every `--flag` with a `PDF_*` environment twin resolves the same way:
//! the flag value wins when given, the env value applies otherwise, and a
//! set-but-unparsable env twin aborts with the variable+value message even
//! when a flag overrides it (the strict parsing contract). These tests
//! mutate process-global environment variables, so they live in their own
//! integration-test binary and serialize on a mutex besides.

use std::sync::{Mutex, PoisonError};

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` with `vars` set, restoring the previous state afterwards
/// even when `body` panics.
fn with_env<R>(vars: &[(&str, Option<&str>)], body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let saved: Vec<(String, Option<String>)> = vars
        .iter()
        .map(|&(k, _)| (k.to_owned(), std::env::var(k).ok()))
        .collect();
    for &(k, v) in vars {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    for (k, v) in saved {
        match v {
            Some(v) => std::env::set_var(&k, v),
            None => std::env::remove_var(&k),
        }
    }
    result.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

fn temp_file(stem: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pdf_prec_{stem}_{}.json", std::process::id()))
}

// --- --checkpoint-every / PDF_CHECKPOINT_EVERY --------------------------

#[test]
fn checkpoint_every_zero_flag_is_rejected_at_parse() {
    with_env(
        &[("PDF_CHECKPOINT", None), ("PDF_CHECKPOINT_EVERY", None)],
        || {
            let path = temp_file("every0");
            let e = pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--checkpoint",
                path.to_str().unwrap(),
                "--checkpoint-every",
                "0",
            ]))
            .unwrap_err();
            assert!(
                e.message.contains("invalid --checkpoint-every=`0`"),
                "fail-fast variable+value message expected, got: {e}"
            );
            assert!(e.message.contains("positive integer"), "{e}");
        },
    );
}

#[test]
fn checkpoint_every_zero_env_is_rejected_at_parse() {
    with_env(
        &[
            ("PDF_CHECKPOINT", Some("unused.json")),
            ("PDF_CHECKPOINT_EVERY", Some("0")),
        ],
        || {
            let e = pdf_cli::run(&args(&["atpg", "s27", "--np0", "10"])).unwrap_err();
            assert!(
                e.message.contains("invalid PDF_CHECKPOINT_EVERY=`0`"),
                "{e}"
            );
        },
    );
}

#[test]
fn garbage_checkpoint_every_env_aborts_even_under_a_flag_override() {
    with_env(
        &[
            ("PDF_CHECKPOINT", None),
            ("PDF_CHECKPOINT_EVERY", Some("sometimes")),
        ],
        || {
            let path = temp_file("garbage_every");
            let e = pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--checkpoint",
                path.to_str().unwrap(),
                "--checkpoint-every",
                "4",
            ]))
            .unwrap_err();
            assert!(
                e.message
                    .contains("invalid PDF_CHECKPOINT_EVERY=`sometimes`"),
                "{e}"
            );
        },
    );
}

#[test]
fn checkpoint_every_flag_combines_with_env_checkpoint_path() {
    let path = temp_file("combine");
    with_env(
        &[
            ("PDF_CHECKPOINT", Some(path.to_str().unwrap())),
            ("PDF_CHECKPOINT_EVERY", None),
        ],
        || {
            // Before the fix this errored with "--checkpoint-every
            // requires --checkpoint" although PDF_CHECKPOINT was set.
            let out = pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--checkpoint-every",
                "2",
            ]))
            .unwrap();
            assert!(out.contains("path-delay-atpg test set"), "{out}");
            assert!(path.exists(), "env-named checkpoint file must be written");
        },
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_flag_takes_cadence_from_env_when_flag_absent() {
    let path = temp_file("env_cadence");
    with_env(
        &[
            ("PDF_CHECKPOINT", None),
            ("PDF_CHECKPOINT_EVERY", Some("1")),
        ],
        || {
            let out = pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--checkpoint",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("path-delay-atpg test set"), "{out}");
            assert!(path.exists());
        },
    );
    let _ = std::fs::remove_file(&path);
}

// --- --cone-cache / PDF_CONE_CACHE --------------------------------------

#[test]
fn cone_cache_env_twin_is_honored_and_validated() {
    // A valid env value applies when the flag is absent.
    with_env(&[("PDF_CONE_CACHE", Some("8"))], || {
        let out = pdf_cli::run(&args(&["atpg", "s27", "--np0", "10"])).unwrap();
        assert!(out.contains("path-delay-atpg test set"), "{out}");
    });
    // A garbage env value aborts, naming variable and value…
    with_env(&[("PDF_CONE_CACHE", Some("lots"))], || {
        let e = pdf_cli::run(&args(&["atpg", "s27", "--np0", "10"])).unwrap_err();
        assert!(e.message.contains("invalid PDF_CONE_CACHE=`lots`"), "{e}");
    });
    // …even when the flag overrides it.
    with_env(&[("PDF_CONE_CACHE", Some("lots"))], || {
        let e =
            pdf_cli::run(&args(&["atpg", "s27", "--np0", "10", "--cone-cache", "4"])).unwrap_err();
        assert!(e.message.contains("invalid PDF_CONE_CACHE=`lots`"), "{e}");
    });
    // The flag wins over a valid env value (observable: both parse, run
    // succeeds; identical outputs at every cache size by design).
    with_env(&[("PDF_CONE_CACHE", Some("8"))], || {
        let out =
            pdf_cli::run(&args(&["atpg", "s27", "--np0", "10", "--cone-cache", "0"])).unwrap();
        assert!(out.contains("path-delay-atpg test set"), "{out}");
    });
}

// --- --threads / PDF_THREADS --------------------------------------------

#[test]
fn threads_zero_flag_is_rejected_at_parse() {
    with_env(&[("PDF_THREADS", None)], || {
        let e = pdf_cli::run(&args(&["atpg", "s27", "--np0", "10", "--threads", "0"])).unwrap_err();
        assert!(
            e.message.contains("invalid --threads=`0`"),
            "fail-fast variable+value message expected, got: {e}"
        );
        assert!(e.message.contains("positive integer"), "{e}");
    });
}

#[test]
fn threads_zero_env_is_rejected_at_parse() {
    with_env(&[("PDF_THREADS", Some("0"))], || {
        let e = pdf_cli::run(&args(&["atpg", "s27", "--np0", "10"])).unwrap_err();
        assert!(e.message.contains("invalid PDF_THREADS=`0`"), "{e}");
        assert!(e.message.contains("positive integer"), "{e}");
    });
}

#[test]
fn garbage_threads_env_aborts_even_under_a_flag_override() {
    with_env(&[("PDF_THREADS", Some("many"))], || {
        let e = pdf_cli::run(&args(&["atpg", "s27", "--np0", "10", "--threads", "4"])).unwrap_err();
        assert!(e.message.contains("invalid PDF_THREADS=`many`"), "{e}");
    });
}

#[test]
fn threads_flag_beats_env_and_output_is_thread_count_invariant() {
    // The resolved thread count changes only the schedule, never the
    // output: a 4-thread run (flag overriding the env twin) must print
    // the exact same report as the single-threaded default.
    let serial = with_env(&[("PDF_THREADS", None)], || {
        pdf_cli::run(&args(&["atpg", "s27", "--np0", "10"])).unwrap()
    });
    let pooled = with_env(&[("PDF_THREADS", Some("2"))], || {
        pdf_cli::run(&args(&["atpg", "s27", "--np0", "10", "--threads", "4"])).unwrap()
    });
    assert_eq!(serial, pooled, "outputs must be byte-identical");
}

// --- --time-budget / PDF_TIME_BUDGET ------------------------------------

#[test]
fn time_budget_env_twin_is_validated_even_under_a_flag_override() {
    with_env(&[("PDF_TIME_BUDGET", Some("soon"))], || {
        let e = pdf_cli::run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--time-budget",
            "30s",
        ]))
        .unwrap_err();
        assert!(e.message.contains("PDF_TIME_BUDGET"), "{e}");
    });
}

#[test]
fn time_budget_flag_beats_a_valid_env_value() {
    // Env says 1us (instant exhaustion), the flag says 10 minutes: the
    // flag must win, so the run completes without exhausting its budget.
    with_env(&[("PDF_TIME_BUDGET", Some("1us"))], || {
        let out = pdf_cli::run(&args(&[
            "atpg",
            "s27",
            "--np0",
            "10",
            "--time-budget",
            "10m",
        ]))
        .unwrap();
        assert!(out.contains("budget_exhausted: false"), "{out}");
    });
}

// --- --sim-width / PDF_SIM_WIDTH and --sim-events / PDF_SIM_EVENTS ------

#[test]
fn sim_width_flag_beats_env_observable_via_telemetry() {
    let report = temp_file("sim_width");
    with_env(
        &[
            ("PDF_SIM_WIDTH", Some("64")),
            ("PDF_SIM_EVENTS", None),
            ("PDF_TELEMETRY", None),
        ],
        || {
            let out = pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--sim-width",
                "256",
                "--telemetry",
                report.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("path-delay-atpg test set"), "{out}");
        },
    );
    let text = std::fs::read_to_string(&report).expect("telemetry report written");
    let json = pdf_telemetry::Json::parse(&text).expect("telemetry report parses");
    let width = json
        .get("counters")
        .and_then(|c| c.get("sim_width"))
        .and_then(pdf_telemetry::Json::as_num);
    assert_eq!(
        width,
        Some(256.0),
        "--sim-width must override PDF_SIM_WIDTH"
    );
    let _ = std::fs::remove_file(&report);
}

#[test]
fn sim_width_and_events_env_garbage_aborts_even_with_flags() {
    with_env(&[("PDF_SIM_WIDTH", Some("1024"))], || {
        let e = pdf_cli::run(&args(&["atpg", "s27", "--sim-width", "64"])).unwrap_err();
        assert!(e.message.contains("PDF_SIM_WIDTH"), "{e}");
    });
    with_env(&[("PDF_SIM_EVENTS", Some("maybe"))], || {
        let e = pdf_cli::run(&args(&["atpg", "s27", "--sim-events", "on"])).unwrap_err();
        assert!(e.message.contains("PDF_SIM_EVENTS"), "{e}");
    });
}
