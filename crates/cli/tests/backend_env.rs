//! `PDF_SIM_BACKEND` / `PDF_SIM_WIDTH` / `PDF_SIM_EVENTS` validation at
//! CLI startup, plus the `--sim-width` / `--sim-events` overrides.
//!
//! These tests mutate process-global environment variables, so they live
//! in their own integration-test binary and serialize on a mutex.

use std::sync::{Mutex, PoisonError};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_var<R>(name: &str, value: Option<&str>, body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let saved = std::env::var(name).ok();
    match value {
        Some(v) => std::env::set_var(name, v),
        None => std::env::remove_var(name),
    }
    let result = body();
    match saved {
        Some(v) => std::env::set_var(name, v),
        None => std::env::remove_var(name),
    }
    result
}

fn with_backend<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
    with_var("PDF_SIM_BACKEND", value, body)
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn misspelled_backend_aborts_any_command_naming_the_accepted_values() {
    with_backend(Some("scaler"), || {
        let e = pdf_cli::run(&args(&["info", "s27"])).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("PDF_SIM_BACKEND"), "{msg}");
        assert!(msg.contains("scaler"), "must name the bad value: {msg}");
        assert!(msg.contains("`scalar`"), "must name accepted values: {msg}");
        assert!(msg.contains("`packed`"), "must name accepted values: {msg}");
    });
}

#[test]
fn valid_backends_run_commands_normally() {
    for backend in [None, Some("scalar"), Some("packed"), Some("SCALAR")] {
        with_backend(backend, || {
            let out = pdf_cli::run(&args(&["info", "s27"])).unwrap();
            assert!(out.contains("critical path delay"), "{backend:?}: {out}");
        });
    }
}

#[test]
fn atpg_minimize_honours_the_scalar_backend() {
    // The minimize sweep routes through the env-selected backend; scalar
    // and packed must keep producing the same test set.
    let run_with = |backend: &str| {
        with_backend(Some(backend), || {
            pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--enrich",
                "--minimize",
                "--seed",
                "7",
            ]))
            .unwrap()
        })
    };
    let scalar = run_with("scalar");
    let packed = run_with("packed");
    assert_eq!(scalar, packed);
    assert!(scalar.contains("static minimization:"), "{scalar}");
}

#[test]
fn misspelled_width_aborts_any_command_naming_the_accepted_values() {
    with_var("PDF_SIM_WIDTH", Some("128"), || {
        let e = pdf_cli::run(&args(&["info", "s27"])).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("PDF_SIM_WIDTH"), "{msg}");
        assert!(msg.contains("128"), "must name the bad value: {msg}");
        assert!(msg.contains("`64`"), "must name accepted values: {msg}");
        assert!(msg.contains("`512`"), "must name accepted values: {msg}");
    });
}

#[test]
fn misspelled_events_switch_aborts_any_command() {
    with_var("PDF_SIM_EVENTS", Some("yes"), || {
        let e = pdf_cli::run(&args(&["info", "s27"])).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("PDF_SIM_EVENTS"), "{msg}");
        assert!(msg.contains("yes"), "must name the bad value: {msg}");
    });
}

#[test]
fn atpg_output_is_identical_across_widths_and_event_modes() {
    // Width and event mode are throughput knobs only: the full atpg
    // output (tests, coverage, minimization) must be byte-identical.
    let run_with = |extra: &[&str]| {
        let mut cmd = vec![
            "atpg",
            "s27",
            "--np0",
            "10",
            "--enrich",
            "--minimize",
            "--seed",
            "7",
        ];
        cmd.extend_from_slice(extra);
        pdf_cli::run(&args(&cmd)).unwrap()
    };
    let baseline = run_with(&["--sim-width", "64"]);
    for width in ["256", "512", "auto"] {
        assert_eq!(baseline, run_with(&["--sim-width", width]), "{width}");
    }
    assert_eq!(baseline, run_with(&["--sim-events", "off"]));
    with_var("PDF_SIM_WIDTH", Some("512"), || {
        assert_eq!(baseline, run_with(&[]));
    });
}

#[test]
fn bad_sim_flags_error_before_any_work() {
    let e = pdf_cli::run(&args(&["atpg", "s27", "--sim-width", "127"])).unwrap_err();
    assert!(e.to_string().contains("--sim-width"), "{e}");
    let e = pdf_cli::run(&args(&["atpg", "s27", "--sim-events", "maybe"])).unwrap_err();
    assert!(e.to_string().contains("--sim-events"), "{e}");
    assert!(e.to_string().contains("maybe"), "{e}");
}
