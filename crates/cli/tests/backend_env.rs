//! `PDF_SIM_BACKEND` validation at CLI startup.
//!
//! These tests mutate a process-global environment variable, so they live
//! in their own integration-test binary and serialize on a mutex.

use std::sync::{Mutex, PoisonError};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let saved = std::env::var("PDF_SIM_BACKEND").ok();
    match value {
        Some(v) => std::env::set_var("PDF_SIM_BACKEND", v),
        None => std::env::remove_var("PDF_SIM_BACKEND"),
    }
    let result = body();
    match saved {
        Some(v) => std::env::set_var("PDF_SIM_BACKEND", v),
        None => std::env::remove_var("PDF_SIM_BACKEND"),
    }
    result
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn misspelled_backend_aborts_any_command_naming_the_accepted_values() {
    with_backend(Some("scaler"), || {
        let e = pdf_cli::run(&args(&["info", "s27"])).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("PDF_SIM_BACKEND"), "{msg}");
        assert!(msg.contains("scaler"), "must name the bad value: {msg}");
        assert!(msg.contains("`scalar`"), "must name accepted values: {msg}");
        assert!(msg.contains("`packed`"), "must name accepted values: {msg}");
    });
}

#[test]
fn valid_backends_run_commands_normally() {
    for backend in [None, Some("scalar"), Some("packed"), Some("SCALAR")] {
        with_backend(backend, || {
            let out = pdf_cli::run(&args(&["info", "s27"])).unwrap();
            assert!(out.contains("critical path delay"), "{backend:?}: {out}");
        });
    }
}

#[test]
fn atpg_minimize_honours_the_scalar_backend() {
    // The minimize sweep routes through the env-selected backend; scalar
    // and packed must keep producing the same test set.
    let run_with = |backend: &str| {
        with_backend(Some(backend), || {
            pdf_cli::run(&args(&[
                "atpg",
                "s27",
                "--np0",
                "10",
                "--enrich",
                "--minimize",
                "--seed",
                "7",
            ]))
            .unwrap()
        })
    };
    let scalar = run_with("scalar");
    let packed = run_with("packed");
    assert_eq!(scalar, packed);
    assert!(scalar.contains("static minimization:"), "{scalar}");
}
