//! End-to-end checks of the `lint` subcommand and the auto-lint exit
//! path: malformed `.bench` fixtures must terminate the process with
//! the dedicated lint exit status (3), clean circuits with 0.

use std::path::PathBuf;
use std::process::{Command, Output};

const EXIT_LINT: i32 = 3;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(args)
        .env_remove("PDF_LINT")
        .env_remove("PDF_STATIC_LEARNING")
        .output()
        .expect("spawn pdfatpg")
}

#[test]
fn lint_clean_circuit_exits_zero() {
    let out = run(&["lint", "s27"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "stdout: {stdout}");
}

#[test]
fn lint_fixture_with_cycle_exits_three() {
    let path = fixture("cycle.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL"), "stderr: {stderr}");
}

#[test]
fn lint_fixture_with_unused_input_exits_three() {
    let path = fixture("undriven.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL002"), "stderr: {stderr}");
}

#[test]
fn lint_fixture_with_duplicate_driver_exits_three() {
    let path = fixture("dup_driver.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL005"), "stderr: {stderr}");
}

#[test]
fn lint_fixture_with_dead_gate_exits_three() {
    let path = fixture("dead_gate.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL004"), "stderr: {stderr}");
}

#[test]
fn auto_lint_blocks_other_commands_on_malformed_input() {
    // Any command on a defective netlist aborts before spending budget.
    let path = fixture("dead_gate.bench");
    let out = run(&["info", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
}

#[test]
fn lint_warnings_are_reported_without_aborting() {
    // A width-0 output cone is suspicious but analyzable: the finding is
    // reported, the command still succeeds (even under the default deny
    // mode, which only aborts on error severity).
    let path = fixture("ff_cone.bench");
    let out = run(&["info", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let combined = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(combined.contains("PDL006"), "output: {combined}");
}

#[test]
fn static_learning_reports_eliminations_on_gadget_stand_in() {
    // The acceptance knob end to end: `faults` with learning enabled on a
    // redundancy-gadget stand-in reports a non-zero elimination count.
    let out = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["faults", "b03+r", "--static-learning"])
        .env_remove("PDF_LINT")
        .env_remove("PDF_STATIC_LEARNING")
        .output()
        .expect("spawn pdfatpg");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.contains("static learning:"))
        .unwrap_or_else(|| panic!("no static-learning line in: {stdout}"));
    assert!(
        !line.contains("0 faults eliminated"),
        "expected eliminations: {line}"
    );
}
