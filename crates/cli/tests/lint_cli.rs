//! End-to-end checks of the `lint` subcommand and the auto-lint exit
//! path: malformed `.bench` fixtures must terminate the process with
//! the dedicated lint exit status (3), clean circuits with 0.

use std::path::PathBuf;
use std::process::{Command, Output};

const EXIT_LINT: i32 = 3;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(args)
        .env_remove("PDF_LINT")
        .env_remove("PDF_STATIC_LEARNING")
        .output()
        .expect("spawn pdfatpg")
}

#[test]
fn lint_clean_circuit_exits_zero() {
    let out = run(&["lint", "s27"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "stdout: {stdout}");
}

#[test]
fn lint_fixture_with_cycle_exits_three() {
    let path = fixture("cycle.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL"), "stderr: {stderr}");
}

#[test]
fn lint_fixture_with_unused_input_exits_three() {
    let path = fixture("undriven.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL002"), "stderr: {stderr}");
}

#[test]
fn lint_fixture_with_duplicate_driver_exits_three() {
    let path = fixture("dup_driver.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL005"), "stderr: {stderr}");
}

#[test]
fn lint_fixture_with_dead_gate_exits_three() {
    let path = fixture("dead_gate.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL004"), "stderr: {stderr}");
}

#[test]
fn auto_lint_blocks_other_commands_on_malformed_input() {
    // Any command on a defective netlist aborts before spending budget.
    let path = fixture("dead_gate.bench");
    let out = run(&["info", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(EXIT_LINT));
}

#[test]
fn lint_warnings_are_reported_without_aborting() {
    // A width-0 output cone is suspicious but analyzable: the finding is
    // reported, the command still succeeds (even under the default deny
    // mode, which only aborts on error severity).
    let path = fixture("ff_cone.bench");
    let out = run(&["info", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let combined = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(combined.contains("PDL006"), "output: {combined}");
}

#[test]
fn lint_reports_semantic_constant_without_aborting() {
    // The semantic pass always runs under the explicit lint command; its
    // findings are warnings, so the command still exits 0.
    let path = fixture("constant.bench");
    let out = run(&["lint", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PDL008"), "stdout: {stdout}");
}

#[test]
fn semantic_preflight_is_off_by_default() {
    // Without PDF_SENSITIZE the automatic preflight must not mention the
    // constant line: stderr stays byte-identical to earlier releases.
    let path = fixture("constant.bench");
    let out = run(&["info", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("PDL008"), "stderr: {stderr}");
}

#[test]
fn semantic_preflight_warns_under_deny_without_aborting() {
    // PDL008+ findings are warning severity: even the default deny mode
    // reports them and proceeds (deny aborts on errors only).
    let path = fixture("constant.bench");
    let out = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["info", path.to_str().unwrap()])
        .env_remove("PDF_LINT")
        .env("PDF_SENSITIZE", "on")
        .output()
        .expect("spawn pdfatpg");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL008"), "stderr: {stderr}");
}

#[test]
fn semantic_preflight_warns_under_warn_mode_without_aborting() {
    let path = fixture("constant.bench");
    let out = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["info", path.to_str().unwrap()])
        .env("PDF_LINT", "warn")
        .env("PDF_SENSITIZE", "on")
        .output()
        .expect("spawn pdfatpg");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDL008"), "stderr: {stderr}");
}

#[test]
fn deny_mode_still_aborts_on_error_diagnostics_with_sensitize_on() {
    let path = fixture("dead_gate.bench");
    let out = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["info", path.to_str().unwrap()])
        .env_remove("PDF_LINT")
        .env("PDF_SENSITIZE", "on")
        .output()
        .expect("spawn pdfatpg");
    assert_eq!(out.status.code(), Some(EXIT_LINT));
}

#[test]
fn sensitize_eliminates_the_false_path_fixture_end_to_end() {
    // The case-split-only false path survives rules 1/2 and learning,
    // so the elimination is attributable to the sensitizability pass.
    let path = fixture("false_path.bench");
    let out = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["faults", path.to_str().unwrap(), "--sensitize"])
        .env_remove("PDF_LINT")
        .env_remove("PDF_SENSITIZE")
        .env_remove("PDF_STATIC_LEARNING")
        .output()
        .expect("spawn pdfatpg");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.contains("sensitizability:"))
        .unwrap_or_else(|| panic!("no sensitizability line in: {stdout}"));
    assert!(
        !line.contains("0 faults pre-eliminated"),
        "expected pre-eliminations: {line}"
    );

    // The split elimination is real: the detectable population shrinks
    // versus a plain (rules-only) run on the same fixture.
    let plain = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["faults", path.to_str().unwrap()])
        .env_remove("PDF_LINT")
        .env_remove("PDF_SENSITIZE")
        .env_remove("PDF_STATIC_LEARNING")
        .output()
        .expect("spawn pdfatpg");
    let detectable = |text: &str| -> usize {
        let head = text.lines().next().expect("summary line").to_owned();
        head.split(" -> ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparsable summary: {head}"))
    };
    let off_count = detectable(&String::from_utf8_lossy(&plain.stdout));
    let on_count = detectable(&stdout);
    assert!(
        on_count < off_count,
        "expected the filter to shrink the population: {on_count} vs {off_count}"
    );
}

#[test]
fn static_learning_reports_eliminations_on_gadget_stand_in() {
    // The acceptance knob end to end: `faults` with learning enabled on a
    // redundancy-gadget stand-in reports a non-zero elimination count.
    let out = Command::new(env!("CARGO_BIN_EXE_pdfatpg"))
        .args(["faults", "b03+r", "--static-learning"])
        .env_remove("PDF_LINT")
        .env_remove("PDF_STATIC_LEARNING")
        .output()
        .expect("spawn pdfatpg");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.contains("static learning:"))
        .unwrap_or_else(|| panic!("no static-learning line in: {stdout}"));
    assert!(
        !line.contains("0 faults eliminated"),
        "expected eliminations: {line}"
    );
}
