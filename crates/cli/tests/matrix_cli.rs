//! End-to-end checks of the `matrix` subcommand: a bounded smoke run
//! passes and writes a parseable report, misconfiguration is rejected at
//! parse time with the dedicated error exit (2), and `--replay` verifies
//! repro artifacts (clean artifact exits 0, malformed artifact exits 2).

use std::path::PathBuf;
use std::process::{Command, Output};

use pdf_atpg::SimBackend;
use pdf_matrix::{CellConfig, Invariant, ReproCase};

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pdfatpg-matrix-cli-{}-{name}", std::process::id()))
}

fn run(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pdfatpg"));
    cmd.args(args);
    for var in [
        "PDF_MATRIX_CELLS",
        "PDF_MATRIX_CIRCUITS",
        "PDF_MATRIX_SEEDS",
        "PDF_MATRIX_FULL",
        "PDF_MATRIX_REPORT",
        "PDF_MATRIX_REPRO_DIR",
        "PDF_SIM_THREADS",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn pdfatpg")
}

#[test]
fn matrix_smoke_run_passes_and_reports_every_family() {
    let out = run(&["matrix", "--circuits", "s27", "--cells", "8"], &[]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matrix: 8 cells"), "stdout: {stdout}");
    for family in ["ident", "kmono", "resume", "learning", "chaos", "sensitize"] {
        assert!(stdout.contains(family), "missing {family}: {stdout}");
    }
}

#[test]
fn matrix_writes_a_parseable_report_file() {
    let report = scratch("report.json");
    let out = run(
        &[
            "matrix",
            "--circuits",
            "s27",
            "--cells",
            "6",
            "--report",
            report.to_str().unwrap(),
        ],
        &[],
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&report).expect("report written");
    std::fs::remove_file(&report).ok();
    let json = pdf_telemetry::Json::parse(&text).expect("report parses");
    assert_eq!(
        json.get("schema").and_then(pdf_telemetry::Json::as_str),
        Some("pdf-matrix-report")
    );
    // 6 sampled cells land on chaos and sensitize-on cells whose twins
    // (clean / sensitize-off, including twins of appended twins) fall
    // outside the sample; the runner appends all 8 of them.
    assert_eq!(
        json.get("cells").and_then(pdf_telemetry::Json::as_num),
        Some(14.0)
    );
    assert!(matches!(
        json.get("passed"),
        Some(pdf_telemetry::Json::Bool(true))
    ));
}

#[test]
fn matrix_rejects_zero_cell_budget() {
    let out = run(&["matrix", "--cells", "0"], &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cells"), "stderr: {stderr}");
}

#[test]
fn matrix_rejects_unknown_circuit() {
    let out = run(&["matrix", "--circuits", "nosuch", "--cells", "4"], &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nosuch"), "stderr: {stderr}");
}

#[test]
fn matrix_validates_env_twin_even_when_flag_wins() {
    // The strict env contract: a malformed PDF_MATRIX_CELLS fails fast by
    // variable name, even though --cells would override its value.
    let out = run(
        &["matrix", "--cells", "4"],
        &[("PDF_MATRIX_CELLS", "bogus")],
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PDF_MATRIX_CELLS"), "stderr: {stderr}");
}

#[test]
fn matrix_env_twins_select_the_run_shape() {
    let out = run(
        &["matrix"],
        &[("PDF_MATRIX_CELLS", "4"), ("PDF_MATRIX_CIRCUITS", "s27")],
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matrix: 4 cells"), "stdout: {stdout}");
}

#[test]
fn matrix_replay_of_a_clean_artifact_exits_zero() {
    // A hand-built artifact whose cells hold no bug: replay must report
    // that it no longer reproduces and exit 0.
    let mut scalar = CellConfig::default_cell();
    scalar.backend = SimBackend::Scalar;
    let repro = ReproCase {
        invariant: Invariant::Ident,
        detail: "fixed upstream".to_owned(),
        circuit: "s27".to_owned(),
        bench: None,
        cells: vec![CellConfig::default_cell(), scalar],
    };
    let path = scratch("clean-repro.json");
    std::fs::write(&path, repro.to_json().to_pretty()).unwrap();
    let out = run(&["matrix", "--replay", path.to_str().unwrap()], &[]);
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no longer reproduces"), "stdout: {stdout}");
}

#[test]
fn matrix_replay_rejects_a_malformed_artifact() {
    let path = scratch("bad-repro.json");
    std::fs::write(&path, "{\"schema\": \"wrong\"}").unwrap();
    let out = run(&["matrix", "--replay", path.to_str().unwrap()], &[]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
}
