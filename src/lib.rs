//! Facade crate for the *path-delay-atpg* workspace: a full Rust
//! reproduction of Pomeranz & Reddy, **"Test Enrichment for Path Delay
//! Faults Using Multiple Sets of Target Faults"** (DATE 2002).
//!
//! This crate re-exports the workspace layers so applications can depend on
//! a single package:
//!
//! * [`logic`] — three-valued scalars and two-pattern value triples,
//! * [`netlist`] — gate-level circuits with explicit fanout-branch lines,
//! * [`paths`] — longest-path enumeration with capped fault stores,
//! * [`faults`] — the path delay fault model and robust conditions `A(p)`,
//! * [`atpg`] — justification, compaction and the test enrichment loop.
//!
//! # Quickstart
//!
//! ```
//! use path_delay_atpg::prelude::*;
//!
//! // The exact s27 combinational core from the paper's Figure 1.
//! let circuit = s27();
//!
//! // Enumerate the fault population of the longest paths (N_P capped).
//! let paths = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
//! let (faults, _) = FaultList::build(&circuit, &paths.store);
//!
//! // Split into P0 (critical) and P1 (next-to-longest) target sets.
//! let split = TargetSplit::by_cumulative_length(&faults, 10);
//!
//! // Run the enrichment ATPG: test count driven by P0, P1 detected free.
//! let outcome = EnrichmentAtpg::new(&circuit)
//!     .with_seed(2002)
//!     .run(&split);
//! assert!(!outcome.tests().is_empty());
//! ```

pub use pdf_atpg as atpg;
pub use pdf_faults as faults;
pub use pdf_logic as logic;
pub use pdf_netlist as netlist;
pub use pdf_paths as paths;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use pdf_atpg::prelude::*;
    pub use pdf_faults::prelude::*;
    pub use pdf_logic::{GateKind, Triple, Value};
    pub use pdf_netlist::prelude::*;
    pub use pdf_paths::prelude::*;
}
