//! End-to-end telemetry: a small-circuit pipeline run must emit a span
//! for every phase — enumerate, eliminate, generate, enrich, compact,
//! simulate — with nonzero durations, plus the standard counters, and the
//! resulting report must survive a JSON round trip.
//!
//! This file holds exactly one test: telemetry state is process-global,
//! and a dedicated integration-test binary is its own process.

use pdf_atpg::{EnrichmentAtpg, TargetSplit};
use pdf_faults::FaultList;
use pdf_netlist::iscas::s27;
use pdf_paths::PathEnumerator;
use pdf_telemetry::{counters, RunReport};

#[test]
fn pipeline_run_emits_every_phase_span_and_counter() {
    let _ = pdf_telemetry::begin_recording();

    let circuit = s27();
    let enumeration = PathEnumerator::new(&circuit).with_cap(10_000).enumerate();
    let (faults, _) = FaultList::build(&circuit, &enumeration.store);
    // N_P0 = 10 leaves a nonempty P1 on s27, so enrichment demonstrably
    // fires (the pdf-atpg tests pin that property).
    let split = TargetSplit::by_cumulative_length(&faults, 10);
    let outcome = EnrichmentAtpg::new(&circuit).with_seed(2002).run(&split);
    let minimized =
        outcome
            .tests()
            .clone()
            .into_minimized_with(pdf_sim::SimBackend::Packed, &circuit, &faults);
    let coverage = minimized.coverage(&circuit, &faults);
    assert!(coverage.detected_count() > 0);

    pdf_telemetry::disable();
    let report = pdf_telemetry::report();

    for phase in [
        "enumerate",
        "eliminate",
        "generate",
        "enrich",
        "compact",
        "simulate",
    ] {
        let span = report
            .span(phase)
            .unwrap_or_else(|| panic!("missing span `{phase}`: {report:?}"));
        assert!(span.calls >= 1, "span `{phase}` never entered");
        assert!(span.seconds > 0.0, "span `{phase}` has zero duration");
    }
    // The generate phase nests inside enrich; simulation shows up under
    // both the generator's drop loop and the compaction sweep.
    let enrich = report.span("enrich").unwrap();
    assert!(enrich.children.iter().any(|c| c.name == "generate"));
    // Every justification call runs inside a `justify` span nested under
    // the generator.
    let generate = enrich
        .children
        .iter()
        .find(|c| c.name == "generate")
        .unwrap();
    let justify = generate
        .children
        .iter()
        .find(|c| c.name == "justify")
        .unwrap_or_else(|| panic!("missing `justify` span under generate: {report:?}"));
    assert!(justify.calls >= 1);

    assert!(report.counter(counters::FAULTS_TARGETED).unwrap() > 0);
    assert!(
        report.counter(counters::SECONDARY_DETECTED).unwrap() > 0,
        "enrichment on s27 with N_P0 = 10 must fold in secondary targets"
    );
    assert!(report.counter(counters::SIM_PASSES).unwrap() > 0);
    assert!(report.counter(counters::PACKED_BLOCKS).unwrap() > 0);
    // The packed justifier: every generation session simulates completion
    // blocks, resolves most s27 calls by a random-completion lane, and
    // revisits cached cone topologies across secondary trials.
    assert!(report.counter(counters::JUSTIFY_PACKED_BLOCKS).unwrap() > 0);
    assert!(report.counter(counters::JUSTIFY_LANE_HITS).unwrap() > 0);
    assert!(report.counter(counters::CONE_CACHE_MISS).unwrap() > 0);
    assert!(
        report.counter(counters::CONE_CACHE_HIT).unwrap() > 0,
        "repeated secondary-candidate trials must reuse cached cones"
    );
    // s27 under the default cap has no evictions and the enrichment set
    // may already be minimal, so those counters only need to exist when
    // their events happened; tests_dropped is recorded even when zero.
    assert!(report.counter(counters::TESTS_DROPPED).is_some());

    let text = report.to_json();
    let parsed = RunReport::from_json(&text).expect("report JSON must parse back");
    assert_eq!(parsed, report);
}
