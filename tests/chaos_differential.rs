//! Differential chaos tests — the PR's acceptance harness: every
//! registered failpoint site, exercised end to end, must either
//!
//! * **heal**: complete with results (and artifacts) byte-identical to
//!   the clean run, absorbing transient errors through retries, or
//! * **halt resumable**: stop in a state whose checkpoint recovery and
//!   resume is byte-identical to the uninterrupted run.
//!
//! The failpoint registry and the telemetry store are process-global,
//! so every test serializes on one mutex.

use std::sync::{Mutex, MutexGuard, PoisonError};

use pdf_atpg::{
    previous_generation_path, AtpgConfig, AtpgOutcome, BasicAtpg, CancelToken, Checkpoint,
    CheckpointPolicy, Compaction, RunBudget,
};
use pdf_faults::FaultList;
use pdf_netlist::Circuit;
use pdf_paths::PathEnumerator;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn s27_population() -> (Circuit, FaultList) {
    let c = pdf_netlist::iscas::s27();
    let paths = PathEnumerator::new(&c).with_cap(400).enumerate();
    let (faults, _) = FaultList::build(&c, &paths.store);
    (c, faults)
}

fn base_config() -> AtpgConfig {
    AtpgConfig {
        seed: 2002,
        compaction: Compaction::ValueBased,
        ..AtpgConfig::default()
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pdf_chaos_diff_{tag}_{}.json", std::process::id()))
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(previous_generation_path(path));
}

fn counter(report: &pdf_telemetry::RunReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Runs checkpointed generation with `spec` armed (when given) and
/// returns the outcome, the recorded counters, and the final checkpoint
/// bytes (when a checkpoint survived).
fn checkpointed_run(
    path: &std::path::Path,
    spec: Option<&str>,
    cancel_polls: Option<u64>,
) -> (AtpgOutcome, pdf_telemetry::RunReport, Option<Vec<u8>>) {
    cleanup(path);
    let (c, faults) = s27_population();
    let mut config = base_config();
    config.checkpoint = Some(CheckpointPolicy::new(path, 1));
    if let Some(polls) = cancel_polls {
        config.budget = RunBudget::unlimited().and_cancel(CancelToken::cancel_after_polls(polls));
    }
    if let Some(spec) = spec {
        pdf_chaos::install(&pdf_chaos::FailpointSpec::parse(spec).unwrap());
    }
    let _ = pdf_telemetry::begin_recording();
    let outcome = BasicAtpg::new(&c).with_config(config).run(&faults);
    let report = pdf_telemetry::report();
    pdf_telemetry::disable();
    pdf_telemetry::reset();
    pdf_chaos::clear();
    let bytes = std::fs::read(path).ok();
    (outcome, report, bytes)
}

/// Every site the chaos registry knows is exercised by this file (or,
/// for `pool.build`, by the pool differential suite): adding a site
/// without extending the differential coverage fails here.
#[test]
fn every_registered_site_has_differential_coverage() {
    let covered = [
        pdf_chaos::sites::CHECKPOINT_WRITE,
        pdf_chaos::sites::CHECKPOINT_READ,
        pdf_chaos::sites::TELEMETRY_FLUSH,
        pdf_chaos::sites::NETLIST_READ,
        pdf_chaos::sites::POOL_BUILD,
    ];
    assert_eq!(pdf_chaos::sites::ALL, covered);
}

#[test]
fn transient_checkpoint_write_heals_byte_identically() {
    let _guard = serialize();
    let path = scratch("write_io");
    let (clean, _, clean_bytes) = checkpointed_run(&path, None, None);
    let (chaos, report, chaos_bytes) = checkpointed_run(&path, Some("checkpoint.write:io@1"), None);
    cleanup(&path);
    assert!(
        counter(&report, pdf_telemetry::counters::FAILPOINTS_HIT) >= 1,
        "the failpoint must fire"
    );
    assert!(
        counter(&report, pdf_telemetry::counters::IO_RETRIES) >= 1,
        "the transient error must be retried"
    );
    assert_eq!(clean.tests().to_text(), chaos.tests().to_text());
    assert_eq!(clean.detected(), chaos.detected());
    assert_eq!(
        clean_bytes.expect("clean checkpoint"),
        chaos_bytes.expect("healed checkpoint"),
        "the healed checkpoint must be byte-identical"
    );
}

#[test]
fn persistent_checkpoint_write_degrades_to_an_uncheckpointed_run() {
    let _guard = serialize();
    let path = scratch("write_full");
    let (clean, _, _) = checkpointed_run(&path, None, None);
    cleanup(&path);
    let (chaos, report, chaos_bytes) =
        checkpointed_run(&path, Some("checkpoint.write:full@1"), None);
    cleanup(&path);
    assert!(counter(&report, pdf_telemetry::counters::FAILPOINTS_HIT) >= 1);
    // A persistently failing checkpoint device must not sink the run:
    // the generator warns once and completes with identical results —
    // just without durability.
    assert_eq!(clean.tests().to_text(), chaos.tests().to_text());
    assert_eq!(clean.detected(), chaos.detected());
    assert!(chaos_bytes.is_none(), "no checkpoint can have been written");
}

#[test]
fn torn_final_checkpoint_recovers_and_resumes_byte_identically() {
    let _guard = serialize();
    let path = scratch("write_torn");
    let (c, faults) = s27_population();
    let full = BasicAtpg::new(&c).with_config(base_config()).run(&faults);

    // Dry runs to find a cancellation point that writes at least two
    // checkpoints (so recovery has a previous generation to fall back
    // into) and to learn how many, so the failpoint tears the last one.
    let (polls, saves) = [7u64, 13, 23, 37, 53, 97]
        .into_iter()
        .find_map(|polls| {
            let (dry, _, _) = checkpointed_run(&path, None, Some(polls));
            let saves = dry.stats().checkpoints_written;
            (saves >= 2).then_some((polls, saves))
        })
        .expect("some cancellation point must write two checkpoints");

    let spec = format!("checkpoint.write:torn@{saves}");
    let (_, report, _) = checkpointed_run(&path, Some(&spec), Some(polls));
    assert!(counter(&report, pdf_telemetry::counters::FAILPOINTS_HIT) >= 1);

    // The torn write reported success, so the primary file is silently
    // corrupt: plain load must fail typed, recovery must fall back one
    // generation, and the resumed run must be byte-identical.
    let plain = Checkpoint::load(&path);
    assert!(
        matches!(plain, Err(pdf_atpg::CheckpointError::Corrupt { .. })),
        "the torn checkpoint must fail the checksum: {plain:?}"
    );
    let _ = pdf_telemetry::begin_recording();
    let (checkpoint, recovered) = Checkpoint::load_with_recovery(&path).expect("recoverable");
    let recovery_report = pdf_telemetry::report();
    pdf_telemetry::disable();
    pdf_telemetry::reset();
    cleanup(&path);
    assert!(recovered, "recovery must come from the previous generation");
    assert_eq!(checkpoint.generation, saves as u64 - 1);
    assert_eq!(
        counter(
            &recovery_report,
            pdf_telemetry::counters::CHECKPOINT_RECOVERIES
        ),
        1
    );
    let resumed = BasicAtpg::new(&c)
        .with_config(base_config())
        .run_resumed(&faults, &checkpoint)
        .expect("the recovered checkpoint matches the run");
    assert_eq!(resumed.tests().to_text(), full.tests().to_text());
    assert_eq!(resumed.detected(), full.detected());
}

#[test]
fn transient_checkpoint_read_heals_on_resume() {
    let _guard = serialize();
    let path = scratch("read_io");
    let (c, faults) = s27_population();
    let full = BasicAtpg::new(&c).with_config(base_config()).run(&faults);
    let (_, _, _) = checkpointed_run(&path, None, Some(7));

    pdf_chaos::install(&pdf_chaos::FailpointSpec::parse("checkpoint.read:io@1").unwrap());
    let _ = pdf_telemetry::begin_recording();
    let loaded = Checkpoint::load(&path);
    let report = pdf_telemetry::report();
    pdf_telemetry::disable();
    pdf_telemetry::reset();
    pdf_chaos::clear();
    cleanup(&path);
    let checkpoint = loaded.expect("the transient read error must heal");
    assert!(counter(&report, pdf_telemetry::counters::IO_RETRIES) >= 1);
    let resumed = BasicAtpg::new(&c)
        .with_config(base_config())
        .run_resumed(&faults, &checkpoint)
        .expect("the checkpoint matches the run");
    assert_eq!(resumed.tests().to_text(), full.tests().to_text());
}

#[test]
fn transient_telemetry_flush_heals_and_writes_identical_bytes() {
    let _guard = serialize();
    let _ = pdf_telemetry::begin_recording();
    pdf_telemetry::count("demo", 3);
    let report = pdf_telemetry::report();
    pdf_telemetry::disable();
    pdf_telemetry::reset();

    let clean_path = scratch("flush_clean");
    let chaos_path = scratch("flush_io");
    report
        .write(clean_path.to_str().unwrap())
        .expect("clean write");
    pdf_chaos::install(&pdf_chaos::FailpointSpec::parse("telemetry.flush:io@1").unwrap());
    let result = report.write(chaos_path.to_str().unwrap());
    pdf_chaos::clear();
    let clean_bytes = std::fs::read(&clean_path).unwrap();
    let chaos_bytes = std::fs::read(&chaos_path).unwrap();
    cleanup(&clean_path);
    cleanup(&chaos_path);
    result.expect("the transient flush error must heal");
    assert_eq!(clean_bytes, chaos_bytes);
}

#[test]
fn transient_netlist_read_heals_in_the_cli() {
    let _guard = serialize();
    let args = |a: &[&str]| -> Vec<String> { a.iter().map(|s| (*s).to_owned()).collect() };
    let bench = pdf_cli::run(&args(&["bench", "s27"])).expect("embedded s27");
    let path =
        std::env::temp_dir().join(format!("pdf_chaos_diff_s27_{}.bench", std::process::id()));
    std::fs::write(&path, &bench).unwrap();
    let file = path.to_str().unwrap();

    let clean = pdf_cli::run(&args(&["info", file])).expect("clean info");
    pdf_chaos::install(&pdf_chaos::FailpointSpec::parse("netlist.read:io@1").unwrap());
    let chaos = pdf_cli::run(&args(&["info", file]));
    pdf_chaos::clear();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        chaos.expect("the transient read error must heal"),
        clean,
        "healed CLI output must be byte-identical"
    );
}
