//! Cross-crate integration tests: the full enumerate → eliminate → split →
//! generate → simulate pipeline on a benchmark-scale stand-in, with
//! reduced workloads to stay fast.

use path_delay_atpg::prelude::*;
use pdf_atpg::{AtpgConfig, Compaction};
use pdf_faults::FaultList as Faults;

struct Setup {
    circuit: pdf_netlist::Circuit,
    faults: Faults,
    split: TargetSplit,
}

fn setup(name: &str, cap: usize, n_p0: usize) -> Setup {
    let circuit = pdf_netlist::stand_in_profile(name)
        .expect("known stand-in")
        .generate()
        .to_circuit()
        .expect("combinational");
    let paths = PathEnumerator::new(&circuit).with_cap(cap).enumerate();
    let (faults, _) = FaultList::build(&circuit, &paths.store);
    let split = TargetSplit::by_cumulative_length(&faults, n_p0);
    Setup {
        circuit,
        faults,
        split,
    }
}

#[test]
fn bookkeeping_matches_post_hoc_simulation_for_every_heuristic() {
    let s = setup("b09", 600, 120);
    for compaction in Compaction::ALL {
        let config = AtpgConfig {
            seed: 11,
            compaction,
            ..AtpgConfig::default()
        };
        let outcome = BasicAtpg::new(&s.circuit)
            .with_config(config)
            .run(s.split.p0());
        let coverage = outcome.tests().coverage(&s.circuit, s.split.p0());
        assert_eq!(
            coverage.detected(),
            outcome.detected(),
            "{}",
            compaction.label()
        );
    }
}

#[test]
fn enrichment_bookkeeping_matches_post_hoc_simulation() {
    let s = setup("b09", 600, 120);
    let outcome = EnrichmentAtpg::new(&s.circuit).with_seed(11).run(&s.split);
    let everything: Faults = s
        .split
        .p0()
        .iter()
        .chain(s.split.p1().iter())
        .cloned()
        .collect();
    let coverage = outcome.tests().coverage(&s.circuit, &everything);
    assert_eq!(coverage.detected(), outcome.detected());
}

#[test]
fn compaction_reduces_tests_without_losing_detection() {
    let s = setup("b09", 600, 120);
    let mut results = Vec::new();
    for compaction in Compaction::ALL {
        let config = AtpgConfig {
            seed: 5,
            compaction,
            ..AtpgConfig::default()
        };
        let outcome = BasicAtpg::new(&s.circuit)
            .with_config(config)
            .run(s.split.p0());
        results.push((
            compaction,
            outcome.tests().len(),
            outcome.detected_in_set(0),
        ));
    }
    let (_, uncomp_tests, uncomp_detected) = results[0];
    for &(compaction, tests, detected) in &results[1..] {
        assert!(
            tests < uncomp_tests,
            "{}: {tests} should beat uncomp {uncomp_tests}",
            compaction.label()
        );
        // Detection parity within the paper's observed random variation.
        assert!(
            detected + 12 >= uncomp_detected,
            "{}: {detected} vs uncomp {uncomp_detected}",
            compaction.label()
        );
    }
}

#[test]
fn enrichment_is_free_and_strictly_better_on_p1() {
    let s = setup("b09", 600, 120);
    assert!(!s.split.p1().is_empty());
    let config = AtpgConfig::default();

    let basic = BasicAtpg::new(&s.circuit)
        .with_config(config.clone())
        .run(s.split.p0());
    let everything: Faults = s
        .split
        .p0()
        .iter()
        .chain(s.split.p1().iter())
        .cloned()
        .collect();
    let accidental = basic
        .tests()
        .coverage(&s.circuit, &everything)
        .detected_count();

    let enriched = EnrichmentAtpg::new(&s.circuit)
        .with_config(config)
        .run(&s.split);

    assert!(enriched.detected_total() > accidental);
    let delta = enriched.tests().len().abs_diff(basic.tests().len());
    assert!(
        delta * 20 <= basic.tests().len().max(20),
        "test count should stay essentially equal: {} vs {}",
        enriched.tests().len(),
        basic.tests().len()
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let s = setup("b03", 400, 80);
        let outcome = EnrichmentAtpg::new(&s.circuit).with_seed(99).run(&s.split);
        (
            s.faults.len(),
            outcome.tests().len(),
            outcome.detected_total(),
            outcome
                .tests()
                .tests()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_vary_only_slightly() {
    // The paper: "small variations ... due to the random selection of
    // values during test generation".
    let s = setup("b09", 600, 120);
    let mut tests = Vec::new();
    let mut detected = Vec::new();
    for seed in [1u64, 2, 3] {
        let outcome = BasicAtpg::new(&s.circuit).with_seed(seed).run(s.split.p0());
        tests.push(outcome.tests().len());
        detected.push(outcome.detected_in_set(0));
    }
    let t_spread = tests.iter().max().unwrap() - tests.iter().min().unwrap();
    let d_spread = detected.iter().max().unwrap() - detected.iter().min().unwrap();
    assert!(t_spread * 10 <= *tests.iter().max().unwrap(), "{tests:?}");
    assert!(
        d_spread * 10 <= *detected.iter().max().unwrap(),
        "{detected:?}"
    );
}

#[test]
fn detected_faults_have_robust_witnesses() {
    // Every fault the outcome claims detected must have at least one test
    // in the set whose simulated waveforms satisfy its requirements.
    let s = setup("b09", 400, 80);
    let outcome = BasicAtpg::new(&s.circuit).with_seed(3).run(s.split.p0());
    let waves: Vec<Vec<pdf_logic::Triple>> = outcome
        .tests()
        .tests()
        .iter()
        .map(|t| pdf_netlist::simulate_triples(&s.circuit, &t.to_triples()))
        .collect();
    for (i, entry) in s.split.p0().iter().enumerate() {
        if outcome.detected()[i] {
            assert!(
                waves.iter().any(|w| entry.assignments.satisfied_by(w)),
                "{} claimed detected without witness",
                entry.fault
            );
        }
    }
}

#[test]
fn k_set_generalization_runs_end_to_end() {
    let s = setup("b09", 600, 120);
    let histogram = LengthHistogram::from_lengths(s.faults.delays());
    let classes = histogram.classes();
    if classes.len() < 4 {
        return; // degenerate population; nothing to split
    }
    let t1 = classes[1].length;
    let t2 = classes[classes.len() / 2].length;
    if t1 <= t2 {
        return;
    }
    let split = TargetSplit::by_thresholds(&s.faults, &[t1, t2]);
    assert_eq!(split.sets().len(), 3);
    let outcome = EnrichmentAtpg::new(&s.circuit).with_seed(4).run(&split);
    assert!(outcome.detected_in_set(0) > 0);
    assert_eq!(
        outcome.detected().len(),
        split.total(),
        "all sets participate in detection bookkeeping"
    );
}

#[test]
fn nonrobust_population_is_superset_of_robust() {
    let circuit = pdf_netlist::stand_in_profile("b09")
        .unwrap()
        .generate()
        .to_circuit()
        .unwrap();
    let paths = PathEnumerator::new(&circuit).with_cap(600).enumerate();
    let (robust, _) = FaultList::build_with(&circuit, &paths.store, Sensitization::Robust);
    let (nonrobust, _) = FaultList::build_with(&circuit, &paths.store, Sensitization::NonRobust);
    assert!(nonrobust.len() >= robust.len());
}
