//! Property-based tests over randomly generated circuits: structural
//! invariants of the line graph, consistency of the waveform algebra with
//! scalar simulation, tightness of the `len(p)` bound, and soundness of
//! detection claims.

use proptest::prelude::*;

use path_delay_atpg::prelude::{
    FaultList, Implicator, Justifier, PathEnumerator, Polarity, SynthProfile, TestSet, TwoPattern,
};
use pdf_logic::Value;
use pdf_netlist::{simulate_triples, simulate_values, Circuit};
use pdf_paths::Strategy as EnumStrategy;

/// A small random circuit, always valid by construction.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..10, 8usize..60, 2usize..8, any::<u64>()).prop_map(|(inputs, gates, levels, seed)| {
        SynthProfile::new("prop", seed)
            .with_inputs(inputs)
            .with_gates(gates)
            .with_levels(levels)
            .generate()
            .to_circuit()
            .expect("generated netlists are valid")
    })
}

/// A random fully-specified two-pattern test for `n` inputs.
fn arb_test(n: usize) -> impl Strategy<Value = TwoPattern> {
    (
        proptest::collection::vec(any::<bool>(), n),
        proptest::collection::vec(any::<bool>(), n),
    )
        .prop_map(|(v1, v2)| {
            TwoPattern::new(
                v1.into_iter().map(Value::from).collect(),
                v2.into_iter().map(Value::from).collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topological_order_and_levels_are_consistent(c in arb_circuit()) {
        let mut pos = vec![usize::MAX; c.line_count()];
        for (i, &id) in c.topo_order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, line) in c.iter() {
            for &f in line.fanin() {
                prop_assert!(pos[f.index()] < pos[id.index()]);
                prop_assert!(c.line(f).level() < line.level());
            }
        }
    }

    #[test]
    fn distances_satisfy_the_bellman_recurrence(c in arb_circuit()) {
        for (id, line) in c.iter() {
            let expect = line
                .fanout()
                .iter()
                .map(|&f| c.line(f).delay() + c.distance_to_output(f))
                .max()
                .unwrap_or(0);
            prop_assert_eq!(c.distance_to_output(id), expect);
            if line.is_output() {
                prop_assert_eq!(c.distance_to_output(id), 0);
            }
        }
    }

    #[test]
    fn waveform_simulation_projects_onto_scalar_simulation(
        (c, test) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), arb_test(n))
        })
    ) {
        // The first and last components of every waveform must equal the
        // scalar simulation of the first and second pattern respectively.
        let waves = simulate_triples(&c, &test.to_triples());
        let first = simulate_values(&c, test.first());
        let second = simulate_values(&c, test.second());
        for i in 0..c.line_count() {
            prop_assert_eq!(waves[i].first(), first[i]);
            prop_assert_eq!(waves[i].last(), second[i]);
            // A specified intermediate value certifies a stable line.
            if waves[i].mid().is_specified() {
                prop_assert_eq!(waves[i].first(), waves[i].mid());
                prop_assert_eq!(waves[i].last(), waves[i].mid());
            }
        }
    }

    #[test]
    fn enumeration_is_exhaustive_and_valid_when_uncapped(c in arb_circuit()) {
        let result = PathEnumerator::new(&c).with_cap(2_000_000).enumerate();
        prop_assume!(!result.stats.overflowed && result.stats.truncated_partials == 0);
        prop_assert_eq!(result.store.len() as u64, c.path_count());
        for entry in result.store.iter() {
            prop_assert!(entry.path.validate(&c).is_ok());
            prop_assert!(entry.path.is_complete(&c));
            prop_assert_eq!(entry.delay, entry.path.delay(&c));
            // len(p) equals delay for complete paths.
            prop_assert_eq!(entry.path.max_extension_delay(&c), entry.delay);
        }
    }

    #[test]
    fn capped_enumeration_keeps_a_longest_path(c in arb_circuit()) {
        let capped = PathEnumerator::new(&c).with_cap(12).with_units_per_path(1).enumerate();
        prop_assert!(!capped.store.is_empty());
        prop_assert_eq!(capped.store.max_delay().unwrap(), c.critical_delay());
        // The moderate strategy agrees whenever its weaker removal rule
        // does not overflow (it may: it cannot prune partial paths).
        let moderate = PathEnumerator::new(&c)
            .with_cap(12)
            .with_units_per_path(1)
            .with_strategy(EnumStrategy::Moderate)
            .enumerate();
        if !moderate.stats.overflowed {
            prop_assert_eq!(moderate.store.max_delay().unwrap(), c.critical_delay());
        }
    }

    #[test]
    fn detected_faults_show_the_transition_at_the_sink(c in arb_circuit()) {
        // Build the fault population; for every fault detected by a random
        // but *justified* test, the path sink must carry a clean
        // transition whose direction is the source polarity xor the path's
        // inversion parity.
        let paths = PathEnumerator::new(&c).with_cap(60).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        prop_assume!(!faults.is_empty());
        let mut justifier = Justifier::new(&c, 17);
        let mut checked = 0usize;
        for entry in faults.iter().take(12) {
            let Some(justified) = justifier.justify(&entry.assignments) else {
                continue;
            };
            let sink = entry.fault.path().last();
            let wave = justified.waves[sink.index()];
            prop_assert!(wave.is_transition(), "{}: sink wave {wave}", entry.fault);
            checked += 1;
        }
        prop_assume!(checked > 0);
    }

    #[test]
    fn fault_list_requirements_are_internally_consistent(c in arb_circuit()) {
        let paths = PathEnumerator::new(&c).with_cap(60).enumerate();
        let (faults, stats) = FaultList::build(&c, &paths.store);
        prop_assert_eq!(
            faults.len() + stats.rule1_conflicts + stats.rule2_conflicts,
            stats.candidates
        );
        for entry in faults.iter() {
            // Rule 2 passed at construction; re-derive.
            prop_assert!(Implicator::from_assignments(&c, &entry.assignments).is_ok());
            // The source requirement is the polarity's transition.
            let src = entry.assignments.get(entry.fault.path().source()).unwrap();
            match entry.fault.polarity() {
                Polarity::SlowToRise => prop_assert_eq!(src.to_string(), "0x1"),
                Polarity::SlowToFall => prop_assert_eq!(src.to_string(), "1x0"),
            }
        }
    }

    #[test]
    fn exact_justifier_validates_randomized_successes(c in arb_circuit()) {
        let paths = PathEnumerator::new(&c).with_cap(30).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        let mut justifier = Justifier::new(&c, 23);
        let exact = pdf_atpg::ExactJustifier::new(&c).with_node_limit(20_000);
        for entry in faults.iter().take(8) {
            if justifier.justify(&entry.assignments).is_some() {
                let outcome = exact.justify(&entry.assignments);
                // The exact engine may hit its node limit, but it must
                // never prove UNSAT where a witness exists.
                prop_assert!(
                    !matches!(outcome, pdf_atpg::ExactOutcome::Unsatisfiable),
                    "{}",
                    entry.fault
                );
            }
        }
    }

    #[test]
    fn coverage_is_monotone_under_test_addition(
        (c, tests) in arb_circuit().prop_flat_map(|c| {
            let n = c.inputs().len();
            (Just(c), proptest::collection::vec(arb_test(n), 1..6))
        })
    ) {
        let paths = PathEnumerator::new(&c).with_cap(40).enumerate();
        let (faults, _) = FaultList::build(&c, &paths.store);
        prop_assume!(!faults.is_empty());
        let mut last = 0usize;
        for k in 1..=tests.len() {
            let set = TestSet::from_tests(tests[..k].to_vec());
            let count = set.coverage(&c, &faults).detected_count();
            prop_assert!(count >= last);
            last = count;
        }
    }
}

#[test]
fn bench_text_round_trip_on_generated_netlists() {
    // (Plain test: proptest adds no value over a seeded loop here.)
    for seed in 0..20u64 {
        let netlist = SynthProfile::new("rt", seed)
            .with_inputs(6)
            .with_gates(30)
            .with_levels(5)
            .generate();
        let text = pdf_netlist::to_bench_string(&netlist);
        let parsed = pdf_netlist::parse_bench(&text, "rt").unwrap();
        assert_eq!(parsed.gate_count(), netlist.gate_count());
        let a = netlist.to_circuit().unwrap();
        let b = parsed.to_circuit().unwrap();
        assert_eq!(a.line_count(), b.line_count());
        assert_eq!(a.path_count(), b.path_count());
        assert_eq!(a.critical_delay(), b.critical_delay());
    }
}
