//! Run-control integration tests: the crash-safe checkpoint/resume
//! guarantee (an interrupted-and-resumed run is byte-identical to an
//! uninterrupted one), graceful budget exhaustion, and per-fault panic
//! quarantine — exercised through the whole pipeline, on the paper's
//! s27 and on a synthetic benchmark-scale circuit.

use proptest::prelude::*;

use pdf_atpg::{
    AtpgConfig, BasicAtpg, CancelToken, Checkpoint, CheckpointPolicy, Compaction, EnrichmentAtpg,
    RunBudget, TargetSplit,
};
use pdf_faults::{Assignments, FaultEntry, FaultList};
use pdf_logic::Triple;
use pdf_netlist::{Circuit, LineId};
use pdf_paths::PathEnumerator;

fn circuit(name: &str) -> Circuit {
    if name == "s27" {
        return pdf_netlist::iscas::s27();
    }
    pdf_netlist::stand_in_profile(name)
        .expect("known stand-in")
        .generate()
        .to_circuit()
        .expect("combinational")
}

fn population(c: &Circuit, cap: usize, n_p0: usize) -> (FaultList, TargetSplit) {
    let paths = PathEnumerator::new(c).with_cap(cap).enumerate();
    let (faults, _) = FaultList::build(c, &paths.store);
    let split = TargetSplit::by_cumulative_length(&faults, n_p0);
    (faults, split)
}

fn ckpt_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pdf_runctl_{tag}_{}.json", std::process::id()))
}

/// The core guarantee, as one reusable check: kill a run after `polls`
/// budget polls, resume from its last checkpoint, and require the final
/// test set to be byte-identical to the uninterrupted run's.
fn assert_resume_identity(name: &str, polls: u64, every: usize, tag: &str) {
    let c = circuit(name);
    let (faults, _) = population(&c, 400, usize::MAX);
    let base = AtpgConfig {
        seed: 2002,
        compaction: Compaction::ValueBased,
        ..AtpgConfig::default()
    };
    let full = BasicAtpg::new(&c).with_config(base.clone()).run(&faults);

    let path = ckpt_path(tag);
    let mut interrupted = base.clone();
    interrupted.budget = RunBudget::unlimited().and_cancel(CancelToken::cancel_after_polls(polls));
    interrupted.checkpoint = Some(CheckpointPolicy::new(&path, every));
    let partial = BasicAtpg::new(&c).with_config(interrupted).run(&faults);

    // The interrupted run produced a valid prefix.
    for (a, b) in partial.tests().tests().iter().zip(full.tests().tests()) {
        assert_eq!(a, b, "{name}: partial run must be a prefix (polls={polls})");
    }

    let checkpoint = Checkpoint::load(&path).expect("a checkpoint was written");
    std::fs::remove_file(&path).ok();
    let resumed = BasicAtpg::new(&c)
        .with_config(base)
        .run_resumed(&faults, &checkpoint)
        .expect("the checkpoint matches the run");
    assert_eq!(
        resumed.tests().to_text(),
        full.tests().to_text(),
        "{name}: resumed run must be byte-identical (polls={polls}, every={every})"
    );
    assert_eq!(resumed.detected(), full.detected(), "{name}");
    assert_eq!(resumed.aborted(), full.aborted(), "{name}");
    assert!(!resumed.budget_exhausted(), "{name}");
}

#[test]
fn killed_mid_generate_then_resumed_is_byte_identical_on_s27() {
    assert_resume_identity("s27", 7, 1, "s27_mid");
}

#[test]
fn killed_mid_generate_then_resumed_is_byte_identical_on_a_synth_circuit() {
    assert_resume_identity("b09", 23, 2, "b09_mid");
}

#[test]
fn enrichment_checkpoints_resume_across_target_sets() {
    // The multi-set (enrichment) session checkpoints the same way; an
    // interruption landing inside the P1 pass must also replay exactly.
    let c = circuit("b09");
    let (_, split) = population(&c, 400, 60);
    let base = AtpgConfig {
        seed: 2002,
        compaction: Compaction::ValueBased,
        ..AtpgConfig::default()
    };
    let full = EnrichmentAtpg::new(&c)
        .with_config(base.clone())
        .run(&split);

    let path = ckpt_path("b09_enrich");
    for polls in [5u64, 50, 500] {
        let mut interrupted = base.clone();
        interrupted.budget =
            RunBudget::unlimited().and_cancel(CancelToken::cancel_after_polls(polls));
        interrupted.checkpoint = Some(CheckpointPolicy::new(&path, 1));
        let _ = EnrichmentAtpg::new(&c).with_config(interrupted).run(&split);
        let checkpoint = Checkpoint::load(&path).expect("a checkpoint was written");
        let resumed = EnrichmentAtpg::new(&c)
            .with_config(base.clone())
            .run_resumed(&split, &checkpoint)
            .expect("the checkpoint matches the run");
        assert_eq!(
            resumed.tests().to_text(),
            full.tests().to_text(),
            "polls={polls}"
        );
        assert_eq!(resumed.detected(), full.detected(), "polls={polls}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_panicking_fault_is_quarantined_and_reported() {
    // Acceptance criterion: a deliberately poisoned fault — its
    // requirement references a line the circuit does not have, so any
    // evaluation panics — is quarantined, counted exactly once, and the
    // rest of the run is unaffected.
    let c = circuit("s27");
    let (faults, _) = population(&c, 400, usize::MAX);
    let mut entries: Vec<FaultEntry> = faults.iter().cloned().collect();
    let slot = entries.len() / 3;
    let mut bad = Assignments::new();
    bad.require(LineId::new(9_999), Triple::RISING).unwrap();
    entries[slot].assignments = bad;
    let poisoned: FaultList = entries.into_iter().collect();

    let outcome = BasicAtpg::new(&c)
        .with_config(AtpgConfig {
            seed: 2002,
            compaction: Compaction::ValueBased,
            ..AtpgConfig::default()
        })
        .run(&poisoned);
    assert_eq!(outcome.stats().faults_quarantined, 1);
    assert!(outcome.quarantined()[slot]);
    assert_eq!(outcome.quarantined().iter().filter(|&&q| q).count(), 1);
    assert!(!outcome.detected()[slot]);
    assert!(!outcome.aborted()[slot], "quarantine is not an abort");
    assert!(outcome.detected_total() > 0, "the rest of the run survived");
    // The skip-list round-trips through the checkpoint schema too.
    assert!(!outcome.budget_exhausted());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The proptest-enforced form of the guarantee: for any interruption
    /// point and checkpoint cadence, interrupted + resumed == uninterrupted.
    #[test]
    fn resume_identity_holds_for_any_interruption_point_on_s27(
        polls in 1u64..200,
        every in 1usize..5,
    ) {
        assert_resume_identity("s27", polls, every, "s27_prop");
    }

    #[test]
    fn resume_identity_holds_for_any_interruption_point_on_a_synth_circuit(
        polls in 1u64..400,
    ) {
        assert_resume_identity("b09", polls, 1, "b09_prop");
    }
}
