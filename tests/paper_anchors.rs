//! Integration tests pinning the reproduction to the paper's own worked
//! examples — the exact values the paper states in its text.

use path_delay_atpg::prelude::*;
use pdf_faults::robust_assignments;
use pdf_netlist::LineId;
use pdf_paths::{Path, Strategy};

/// Paper line number -> LineId (the paper numbers lines from 1).
fn line(k: usize) -> LineId {
    LineId::new(k - 1)
}

fn s27_path(ids: &[usize]) -> Path {
    ids.iter().map(|&k| line(k)).collect()
}

#[test]
fn figure1_s27_structure() {
    let c = s27();
    assert_eq!(c.line_count(), 26);
    assert_eq!(c.inputs().len(), 7);
    assert_eq!(c.outputs().len(), 4);
    // The longest path of the walkthrough, length 10.
    let longest = s27_path(&[1, 8, 13, 14, 16, 19, 20, 21, 22, 25]);
    longest.validate(&c).unwrap();
    assert_eq!(longest.delay(&c), 10);
    assert_eq!(c.critical_delay(), 10);
}

#[test]
fn section_2_1_necessary_assignments_example() {
    // "For the slow-to-rise fault on the path (2,9,10,15), A(p) consists
    //  of the off-path values 000 on line 7 and xx0 on line 3, and of the
    //  source value 0x1 on line 2."
    let c = s27();
    let fault = PathDelayFault::new(s27_path(&[2, 9, 10, 15]), Polarity::SlowToRise);
    let a = robust_assignments(&c, &fault).unwrap();
    assert_eq!(a.get(line(7)).unwrap().to_string(), "000");
    assert_eq!(a.get(line(3)).unwrap().to_string(), "xx0");
    assert_eq!(a.get(line(2)).unwrap().to_string(), "0x1");
    assert_eq!(a.len(), 3);
}

#[test]
fn section_3_1_walkthrough_set_1_is_exact() {
    // Table 1(a): the first cap event under N_P = 20 at path granularity.
    let c = s27();
    let mut first_snapshot = None;
    let _ = PathEnumerator::new(&c)
        .with_cap(20)
        .with_units_per_path(1)
        .with_strategy(Strategy::Moderate)
        .enumerate_observed(|e| {
            let pdf_paths::EnumEvent::CapReached { snapshot } = e;
            if first_snapshot.is_none() {
                first_snapshot = Some(snapshot.clone());
            }
        });
    let snapshot = first_snapshot.expect("cap must be reached");
    assert_eq!(snapshot.len(), 20);
    let rendered: std::collections::BTreeSet<String> = snapshot
        .iter()
        .map(|s| format!("{}{}", s.path, if s.complete { "c" } else { "p" }))
        .collect();
    // All seven complete paths of Table 1(a)...
    for complete in [
        "(1,8,12,25)c",
        "(2,9,10,15)c",
        "(3,15)c",
        "(4,19,20,21,22,25)c",
        "(5,21,22,25)c",
        "(6,14,16,19,20,21,22,25)c",
        "(7,9,10,15)c",
    ] {
        assert!(rendered.contains(complete), "missing {complete}");
    }
    // ...and the longest partial.
    assert!(rendered.contains("(1,8,13,14,16,19,20,21,22)p"));
}

#[test]
fn section_3_1_walkthrough_final_lengths() {
    // "The construction of P ends with a set of 18 paths of lengths
    //  between 7 and 10" — we retain those 18 plus one length-6 path (see
    //  DESIGN.md for the paper-internal inconsistency analysis).
    let c = s27();
    let result = PathEnumerator::new(&c)
        .with_cap(20)
        .with_units_per_path(1)
        .with_strategy(Strategy::Moderate)
        .enumerate();
    let mut delays: Vec<u32> = result.store.iter().map(|e| e.delay).collect();
    delays.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(delays.len(), 19);
    assert!(delays[..18].iter().all(|&d| (7..=10).contains(&d)));
    assert_eq!(delays[0], 10);
}

#[test]
fn both_polarities_of_the_example_path_are_testable() {
    let c = s27();
    let mut justifier = Justifier::new(&c, 2002).with_attempts(4);
    for polarity in Polarity::BOTH {
        let fault = PathDelayFault::new(s27_path(&[2, 9, 10, 15]), polarity);
        let a = robust_assignments(&c, &fault).unwrap();
        let justified = justifier
            .justify(&a)
            .unwrap_or_else(|| panic!("{fault} should be testable"));
        assert!(a.satisfied_by(&justified.waves));
        // The sink (line 15) must carry the propagated transition:
        // two inversions along 9 and 15 keep the source polarity.
        let sink = justified.waves[line(15).index()];
        match polarity {
            Polarity::SlowToRise => assert_eq!(sink.to_string(), "0x1"),
            Polarity::SlowToFall => assert_eq!(sink.to_string(), "1x0"),
        }
    }
}

#[test]
fn paper_claim_enrichment_beats_accidental_detection_on_s27() {
    // The paper's central claim, on the one circuit we have exactly.
    let c = s27();
    let paths = PathEnumerator::new(&c).with_cap(10_000).enumerate();
    let (faults, _) = FaultList::build(&c, &paths.store);
    let split = TargetSplit::by_cumulative_length(&faults, 10);
    assert!(!split.p1().is_empty());

    let everything: pdf_faults::FaultList = split
        .p0()
        .iter()
        .chain(split.p1().iter())
        .cloned()
        .collect();

    let basic = BasicAtpg::new(&c).with_seed(2002).run(split.p0());
    let accidental = basic.tests().coverage(&c, &everything).detected_count();

    let enriched = EnrichmentAtpg::new(&c).with_seed(2002).run(&split);

    assert!(
        enriched.detected_total() > accidental,
        "enrichment {} must beat accidental {accidental}",
        enriched.detected_total(),
    );
    // "without increasing the number of tests" — identical driver, small
    // random variation allowed (the paper observes the same).
    assert!(
        enriched.tests().len() <= basic.tests().len() + 1,
        "{} vs {}",
        enriched.tests().len(),
        basic.tests().len()
    );
}
