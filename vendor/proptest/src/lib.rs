//! Minimal offline shim of the `proptest` API.
//!
//! Implements the subset of proptest this workspace uses — deterministic
//! random generation through [`strategy::Strategy`] combinators and the
//! [`proptest!`] test macro — without shrinking. Each test function draws
//! its cases from a fixed per-test seed, so failures are reproducible.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The case runner: RNG, configuration, and case outcome.

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject,
        /// An assertion failed; the harness panics with this message.
        Fail(String),
    }

    /// Per-test configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator — deterministic per test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a over the bytes).
        #[must_use]
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value below `bound` (`bound > 0`).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            // Multiply-shift; bias is irrelevant for test-case generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// A uniform boolean.
        pub fn next_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A strategy producing a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + rng.next_below(span.saturating_add(1).max(1)) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy backing [`Arbitrary`] for primitives.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_bool()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(core::marker::PhantomData)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a length specification for [`vec`].
    pub trait IntoLenRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// A vector strategy with length drawn from `len` (a fixed `usize`
    /// or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        assert!(lo < hi, "empty length range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let n = self.lo + rng.next_below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = config.cases.saturating_mul(16).max(256);
            while accepted < config.cases {
                assert!(
                    attempts < max_attempts,
                    "proptest {}: too many rejected cases ({accepted}/{} accepted \
                     after {attempts} attempts)",
                    stringify!($name),
                    config.cases,
                );
                attempts += 1;
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed (case {attempts}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}
