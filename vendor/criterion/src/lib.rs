//! Minimal offline shim of the `criterion` API.
//!
//! Wall-clock measurement only: each benchmark is warmed up, then timed
//! over `sample_size` samples whose iteration counts are auto-scaled to a
//! per-sample time floor. Reports mean ns/iter on stdout in a stable
//! `group/name: <mean> ns/iter (n samples)` format that downstream
//! tooling (`crates/bench`) parses.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times every
/// routine call individually, so the hint is accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.into());
        match bencher.result {
            Some(m) => println!("{label}: {:.1} ns/iter ({} samples)", m.mean_ns, m.samples),
            None => println!("{label}: no measurement recorded"),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug)]
struct Measurement {
    mean_ns: f64,
    samples: usize,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

/// Floor on the time spent per sample; iteration counts scale to meet it.
const SAMPLE_FLOOR: Duration = Duration::from_millis(5);

impl Bencher {
    /// Times `routine` (the common case).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and per-iter estimate.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (SAMPLE_FLOOR.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
        }
        self.result = Some(Measurement {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            samples: self.sample_size,
        });
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        // One warm-up call, then `sample_size` timed single-iteration
        // samples (setup excluded from the clock).
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some(Measurement {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            samples: self.sample_size,
        });
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
